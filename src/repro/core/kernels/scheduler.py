"""The shared level-synchronous scheduler.

Every traversal engine in the repo — the 1.5D ``DistributedBFS``, the
rank-explicit ``ReplayBFS``, and the 1D/2D baselines — executes through
one :class:`LevelSyncScheduler`.  The scheduler owns the only
sub-iteration loop: per BFS level it prices the engine's frontier sync,
resolves each component's direction (whole-iteration or fresh
per-component), runs the mounted :class:`~repro.core.kernels.base.ComponentKernel`
set densest-first inside ``component`` tracer spans, and commits
activations so later sub-iterations of the same level see the fresh
visited state (§4.2's freshness rule).

Engines differ only through the :class:`SchedulerHost` hooks they
implement: what a frontier sync costs, how directions are chosen, how
activations are recorded, and what happens at iteration/run end (eager
vs §5-delayed parent reduction, the replay's message routing and
delegate seeding).  One loop, one frontier/visited/parent semantics,
one tracing shape (``bfs`` → ``iteration`` → ``component`` → charge
leaves) for every engine.

Because the loop is shared, so is the metrics surface: pass ``metrics=``
a :class:`~repro.obs.metrics.MetricsRegistry` and every engine emits the
same aggregate families with zero per-engine code — per-component
``edges_scanned``/``messages``/``activated``/``subiterations`` counters
labeled by ``component`` and chosen ``direction``, ``subiteration_skips``
for empty components, ``direction_mode`` (fresh per-component vs whole
iteration) freshness counts, the ``frontier_size`` histogram, and —
through the ledger the registry is shared with — the comm/compute
families documented in :mod:`repro.runtime.ledger`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lanes import LaneState
from repro.core.metrics import BFSRunResult, IterationRecord
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.ledger import TrafficLedger

__all__ = [
    "LevelSyncScheduler",
    "SchedulerHost",
    "BatchRunState",
    "ResumePoint",
    "ProgramResumePoint",
]


@dataclass
class BatchRunState:
    """Raw outcome of a batched (multi-source) scheduler run.

    The serving layer's :class:`~repro.serve.msbfs.MSBFSResult` wraps
    this into per-root views; the scheduler only guarantees the lane
    semantics: ``lanes.parent[l]`` is bit-identical to the parent array
    of a sequential run from ``lanes.roots[l]``.
    """

    lanes: LaneState
    #: One record per wave, with batch-aggregate counters.
    records: list[IterationRecord]
    ledger: TrafficLedger
    #: Per wave: per-lane frontier sizes (``int64[num_lanes]``).
    lane_frontiers: list[np.ndarray] = field(default_factory=list)
    #: Per wave: ``{component: (push_lane_mask, pull_lane_mask)}``.
    lane_directions: list[dict] = field(default_factory=list)


@dataclass(frozen=True)
class ResumePoint:
    """A synthetic mid-traversal entry point for :meth:`LevelSyncScheduler.run`.

    Structurally identical to a
    :class:`~repro.resilience.checkpoint.Checkpoint` (the ``resume=``
    parameter is duck-typed on exactly these fields) but constructed
    from *derived* state rather than captured live state — no sha256
    fingerprint, no persistence.  The incremental result patcher
    (:mod:`repro.dynamic.patch`) builds one from a repaired result's
    unaffected level prefix and re-enters the level loop at the first
    iteration the graph delta can influence: the scheduler resumes at
    ``iteration + 1``, so ``iteration = k - 1`` re-runs levels ``k``
    onward.  ``parent``/``visited``/``active`` must be the exact state
    a fresh run would hold after completing iteration ``iteration``.
    """

    root: int
    #: Last completed iteration index (state is *after* this level).
    iteration: int
    parent: np.ndarray
    visited: np.ndarray
    active: np.ndarray
    #: Per-iteration records of the kept prefix.
    records: tuple = ()


@dataclass(frozen=True)
class ProgramResumePoint:
    """Synthetic resume for :meth:`LevelSyncScheduler.run_program`.

    The vertex-program sibling of :class:`ResumePoint` (duck-typed like
    a :class:`~repro.resilience.checkpoint.ProgramCheckpoint`): restores
    the program's ``state`` dict and re-enters the iteration loop with
    ``active`` as the frontier.  With ``iteration = -1`` the loop starts
    at 0, i.e. a fresh run seeded with arbitrary prior state — how the
    dynamic layer re-converges SSSP from patched distances instead of
    recomputing from the root.
    """

    program: str
    iteration: int
    active: np.ndarray
    state: dict
    records: tuple = ()


class SchedulerHost:
    """Hook surface an engine exposes to the scheduler.

    Subclasses must set :attr:`num_vertices`, :attr:`num_input_edges`,
    a ``config`` with ``max_iterations``, and a ``cost`` model; every
    hook has a neutral default so a minimal engine only overrides what
    its scheme actually charges.
    """

    #: Total vertices (size of the parent/visited/frontier arrays).
    num_vertices: int
    #: Undirected input edges, reported on the run result.
    num_input_edges: int

    def make_ledger(self, tracer: Tracer, metrics=NULL_METRICS) -> TrafficLedger:
        return TrafficLedger(self.cost, tracer=tracer, metrics=metrics)

    def seed(self, root: int) -> None:
        """Install the root into any engine-private state (the scheduler
        already seeded its own parent/visited/frontier arrays)."""

    def restore(self, root: int, parent, visited, active) -> None:
        """Rebuild engine-private state from checkpointed global arrays
        (called instead of :meth:`seed` when resuming mid-traversal).
        Stateless hosts — every analytic engine — need nothing: their
        per-iteration inputs are exactly the global arrays the scheduler
        restored.  The replay engine overrides this to re-shard the
        arrays into its per-rank state."""

    def begin_iteration(self, ledger, active, visited) -> None:
        """Price whatever the scheme exchanges before ranks may expand
        (delegate frontier syncs, barriers)."""

    def iteration_direction(self, active, visited) -> str | None:
        """One direction for the whole iteration, or ``None`` to ask
        :meth:`component_direction` freshly per sub-iteration."""
        return None

    def component_direction(self, name, active, visited) -> str:
        """Direction for one component, measured against the *latest*
        visited state (only consulted when :meth:`iteration_direction`
        returned ``None``)."""
        raise NotImplementedError

    def record_activation(self, record: IterationRecord, next_active) -> None:
        """Fill ``record.newly_activated`` in the scheme's granularity."""

    def end_iteration(
        self, ledger, record, active, visited, parent, next_active
    ) -> None:
        """Iteration-end work: eager parent reduction, or (for the
        replay) routing buffered messages and committing activations
        into ``visited``/``parent``/``next_active`` in place."""

    def end_run(self, ledger, tracer: Tracer, parent) -> None:
        """Run-end work (inside the ``bfs`` span): the §5 delayed parent
        reduction, final barriers, delegate parent merges."""

    # -- batched-wave hooks (multi-source runs; see ``run_batch``) ------

    def begin_batch_iteration(self, ledger, lanes) -> None:
        """Price the batched frontier sync of one wave."""

    def batch_iteration_directions(self, lanes):
        """``(push_mask, pull_mask)`` lane groups for the whole wave, or
        ``None`` to ask :meth:`batch_component_directions` freshly per
        sub-iteration (mirrors :meth:`iteration_direction`)."""
        return None

    def batch_component_directions(self, name, lanes) -> tuple:
        """``(push_mask, pull_mask)`` lane groups for one component,
        measured per lane against the latest visited state — each lane
        gets the direction its sequential run would have chosen."""
        raise NotImplementedError

    def record_batch_activation(self, record: IterationRecord, newly) -> None:
        """Fill ``record.newly_activated`` from the wave's lane words."""

    def end_batch_iteration(self, ledger, record, lanes, newly) -> None:
        """Wave-end work (eager parent reductions, barriers)."""

    def end_batch_run(self, ledger, tracer: Tracer, lanes) -> None:
        """Batch-end work (the §5 delayed parent reduction, per lane)."""


class LevelSyncScheduler:
    """Runs a kernel set level-synchronously on behalf of a host."""

    def __init__(
        self,
        host: SchedulerHost,
        kernels: dict[str, "ComponentKernel"],
        *,
        tracer: Tracer | None = None,
        metrics=None,
        backend=None,
    ) -> None:
        self.host = host
        #: Execution order within an iteration is the mounting order —
        #: densest (highest-degree endpoints) first for the 1.5D set.
        self.kernels = kernels
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        if backend is None:
            from repro.runtime.backends.base import SimulatedBackend

            backend = SimulatedBackend()
        #: Where sub-iteration bodies run; the scheduler mounts its
        #: kernels but never closes the backend (the creator owns it).
        self.backend = backend
        backend.mount(kernels)
        # A traced scheduler pulls the backend's worker telemetry into
        # its own sinks; untraced schedulers leave the backend alone so
        # a shared backend keeps reporting to whoever wanted it.
        if self.tracer.enabled or self.metrics.enabled:
            backend.attach_telemetry(self.tracer, self.metrics)

    def run(
        self,
        root: int,
        *,
        faults=None,
        checkpointer=None,
        resume=None,
        span_attrs=None,
    ) -> BFSRunResult:
        """Run one BFS from ``root``; returns the validated-shape result.

        ``span_attrs`` (a dict) merges extra attributes — e.g. a serving
        trace id — into the root ``bfs`` span; pure labeling, never read
        by the loop.

        Resilience hooks (all default-off, leaving the fault-free path
        bit-identical):

        faults:
            A :class:`~repro.resilience.faults.FaultInjector`.  It is
            installed on the run's ledger (the charge choke point every
            engine shares) and consulted at each iteration boundary, so
            crash faults abort the run with a
            :class:`~repro.resilience.faults.RankCrashError` annotated
            with the partial ledger and completed-iteration count.
        checkpointer:
            A :class:`~repro.resilience.checkpoint.LevelCheckpointer`;
            after each level whose index matches the cadence, the
            committed ``parent``/``visited``/``active`` state and the
            per-iteration records are snapshotted and the write cost is
            charged to the ledger as a ``checkpoint``-phase collective.
        resume:
            A :class:`~repro.resilience.checkpoint.Checkpoint` to
            continue from instead of seeding from scratch: the scheduler
            restores the snapshot's arrays and records, charges the
            restore broadcast, asks the host to
            :meth:`~SchedulerHost.restore` its private state, and
            re-enters the level loop at the snapshot's next iteration.
        """
        host = self.host
        n = host.num_vertices
        if not 0 <= root < n:
            raise ValueError(f"root {root} out of range for n={n}")

        tracer = self.tracer
        metrics = self.metrics
        ledger = host.make_ledger(tracer, metrics)
        if faults is not None and faults.enabled:
            ledger.faults = faults

        if resume is None:
            parent = np.full(n, -1, dtype=np.int64)
            visited = np.zeros(n, dtype=bool)
            active = np.zeros(n, dtype=bool)
            parent[root] = root
            visited[root] = True
            active[root] = True
            iterations: list[IterationRecord] = []
            start_it = 0
            host.seed(root)
            metrics.counter("bfs_runs").inc()
        else:
            if resume.root != root:
                raise ValueError(
                    f"resume snapshot is for root {resume.root}, not {root}"
                )
            parent = resume.parent.copy()
            visited = resume.visited.copy()
            active = resume.active.copy()
            iterations = list(resume.records)
            start_it = resume.iteration + 1
            host.restore(root, parent, visited, active)
            if checkpointer is not None and resume.iteration >= 0:
                checkpointer.charge_restore(ledger, resume)
            metrics.counter("bfs_resumes").inc()

        with tracer.span("bfs", category="bfs", root=root, **(span_attrs or {})):
            try:
                self._level_loop(
                    host, ledger, parent, visited, active, iterations,
                    start_it, root, faults, checkpointer,
                )
            except Exception as exc:
                # Annotate a simulated crash with what the aborted
                # attempt cost, then let the recovery policy take over.
                from repro.resilience.faults import RankCrashError

                if isinstance(exc, RankCrashError):
                    exc.ledger = ledger
                    exc.completed_iterations = len(iterations)
                if faults is not None:
                    faults.end_run()
                raise
            host.end_run(ledger, tracer, parent)
        if faults is not None:
            faults.end_run()

        return BFSRunResult(
            root=root,
            parent=parent,
            iterations=iterations,
            ledger=ledger,
            total_seconds=ledger.total_seconds,
            num_input_edges=host.num_input_edges,
            metrics=metrics,
        )

    def _level_loop(
        self, host, ledger, parent, visited, active, iterations,
        start_it, root, faults, checkpointer,
    ) -> None:
        """The shared per-level loop (see :meth:`run` for the contract)."""
        n = host.num_vertices
        tracer = self.tracer
        metrics = self.metrics
        for it in range(start_it, host.config.max_iterations):
            if faults is not None:
                faults.begin_iteration(it)
            if not active.any():
                break
            frontier = int(np.count_nonzero(active))
            metrics.counter("iterations").inc()
            metrics.histogram("frontier_size").observe(frontier)
            with tracer.span(
                "iteration", category="iteration", index=it, frontier=frontier
            ):
                host.begin_iteration(ledger, active, visited)
                record = IterationRecord(index=it, frontier_size=frontier)
                next_active = np.zeros(n, dtype=bool)
                global_dir = host.iteration_direction(active, visited)
                metrics.counter(
                    "direction_mode",
                    mode="fresh" if global_dir is None else "whole",
                ).inc()

                for name, kernel in self.kernels.items():
                    if kernel.num_arcs == 0:
                        record.directions[name] = "-"
                        metrics.counter(
                            "subiteration_skips", component=name
                        ).inc()
                        continue
                    if global_dir is None:
                        direction = host.component_direction(
                            name, active, visited
                        )
                    else:
                        direction = global_dir
                    record.directions[name] = direction
                    with tracer.span(
                        name,
                        category="component",
                        iteration=it,
                        direction=direction,
                    ) as csp:
                        newly, parents = self.backend.execute(
                            kernel, direction, active, visited, ledger, record
                        )
                        csp.add_counter(
                            "edges", record.scanned_arcs.get(name, 0)
                        )
                        if record.messages.get(name, 0):
                            csp.add_counter("messages", record.messages[name])
                        csp.add_counter("activated", newly.size)
                    labels = dict(component=name, direction=direction)
                    metrics.counter("subiterations", **labels).inc()
                    metrics.counter("edges_scanned", **labels).inc(
                        record.scanned_arcs.get(name, 0)
                    )
                    metrics.counter("messages", **labels).inc(
                        record.messages.get(name, 0)
                    )
                    metrics.counter("activated", **labels).inc(newly.size)
                    if newly.size:
                        parent[newly] = parents
                        visited[newly] = True
                        next_active[newly] = True

                host.record_activation(record, next_active)
                host.end_iteration(
                    ledger, record, active, visited, parent, next_active
                )
                iterations.append(record)
                active = next_active

            # Level committed: snapshot at the consistency point the
            # level-synchronous structure guarantees.
            if checkpointer is not None and checkpointer.due(it):
                checkpointer.save(
                    ledger=ledger, root=root, iteration=it, parent=parent,
                    visited=visited, active=active, records=iterations,
                )

    # ------------------------------------------------------------------
    # vertex programs
    # ------------------------------------------------------------------

    def run_program(
        self,
        program,
        *,
        faults=None,
        checkpointer=None,
        resume=None,
        span_attrs=None,
    ):
        """Run a bound :class:`~repro.core.programs.base.VertexProgram`
        through the mounted kernel set.

        The loop is the BFS level loop with the commit step generalized:
        instead of parent/visited bookkeeping, each component hands its
        selected arcs to the program's gather → combine → apply and the
        union of activations feeds ``program.end_iteration``, which
        returns the next frontier (or ``None`` when converged).  Faults,
        checkpointing (via
        :meth:`~repro.resilience.checkpoint.LevelCheckpointer.save_program`),
        spans (``program`` → ``iteration`` → ``component``), and the
        per-component metric families all come from the shared loop —
        zero per-algorithm glue.
        """
        from repro.core.programs.base import ProgramRunResult

        host = self.host
        tracer = self.tracer
        metrics = self.metrics
        for name, kernel in self.kernels.items():
            if kernel.num_arcs and not kernel.supports_programs:
                raise NotImplementedError(
                    f"kernel {name} does not support vertex programs"
                )
        ledger = host.make_ledger(tracer, metrics)
        if faults is not None and faults.enabled:
            ledger.faults = faults

        if resume is None:
            active = program.initial_frontier()
            records: list[IterationRecord] = []
            start_it = 0
            metrics.counter("program_runs", program=program.name).inc()
        else:
            if resume.program != program.name:
                raise ValueError(
                    f"resume snapshot is for program {resume.program!r}, "
                    f"not {program.name!r}"
                )
            program.restore(resume.state)
            active = resume.active.copy()
            records = list(resume.records)
            start_it = resume.iteration + 1
            if checkpointer is not None and resume.iteration >= 0:
                checkpointer.charge_restore(ledger, resume)
            metrics.counter("program_resumes", program=program.name).inc()

        with tracer.span(
            "program", category="bfs", program=program.name,
            **(span_attrs or {}),
        ):
            try:
                self._program_loop(
                    program, host, ledger, active, records, start_it,
                    faults, checkpointer,
                )
            except Exception as exc:
                from repro.resilience.faults import RankCrashError

                if isinstance(exc, RankCrashError):
                    exc.ledger = ledger
                    exc.completed_iterations = len(records)
                if faults is not None:
                    faults.end_run()
                raise
            host.end_run(ledger, tracer, None)
            program.end_run()
        if faults is not None:
            faults.end_run()

        return ProgramRunResult(
            program=program.name,
            state=program.state_arrays(),
            iterations=records,
            ledger=ledger,
            num_input_edges=host.num_input_edges,
            converged=program.converged,
            info=program.info(),
        )

    def _program_loop(
        self, program, host, ledger, active, records, start_it,
        faults, checkpointer,
    ) -> None:
        """The shared per-iteration program loop (see :meth:`run_program`)."""
        n = host.num_vertices
        tracer = self.tracer
        metrics = self.metrics
        pname = program.name
        for it in range(start_it, program.max_iterations):
            if faults is not None:
                faults.begin_iteration(it)
            if active is None or not active.any():
                break
            frontier = int(np.count_nonzero(active))
            metrics.counter("program_iterations", program=pname).inc()
            metrics.histogram("frontier_size").observe(frontier)
            with tracer.span(
                "iteration", category="iteration", index=it, frontier=frontier
            ):
                settled = program.settled_mask()
                host.begin_iteration(ledger, active, settled)
                program.begin_iteration(it, active)
                record = IterationRecord(index=it, frontier_size=frontier)
                touched = np.zeros(n, dtype=bool)
                free_choice = (
                    program.forced_direction is None and program.supports_pull
                )
                metrics.counter(
                    "direction_mode", mode="fresh" if free_choice else "forced"
                ).inc()

                for name, kernel in self.kernels.items():
                    if kernel.num_arcs == 0:
                        record.directions[name] = "-"
                        metrics.counter(
                            "subiteration_skips", component=name
                        ).inc()
                        continue
                    if free_choice:
                        direction = host.component_direction(
                            name, active, settled
                        )
                    else:
                        direction = program.forced_direction or "push"
                    record.directions[name] = direction
                    with tracer.span(
                        name,
                        category="component",
                        iteration=it,
                        direction=direction,
                    ) as csp:
                        newly = self.backend.execute_program(
                            kernel, program, direction, active, ledger, record
                        )
                        csp.add_counter(
                            "edges", record.scanned_arcs.get(name, 0)
                        )
                        if record.messages.get(name, 0):
                            csp.add_counter("messages", record.messages[name])
                        csp.add_counter("activated", newly.size)
                    labels = dict(component=name, direction=direction)
                    metrics.counter("subiterations", **labels).inc()
                    metrics.counter("edges_scanned", **labels).inc(
                        record.scanned_arcs.get(name, 0)
                    )
                    metrics.counter("messages", **labels).inc(
                        record.messages.get(name, 0)
                    )
                    metrics.counter("activated", **labels).inc(newly.size)
                    if newly.size:
                        touched[newly] = True

                host.record_activation(record, touched)
                metrics.counter("program_updates", program=pname).inc(
                    int(np.count_nonzero(touched))
                )
                next_active = program.end_iteration(it, active, touched)
                host.end_iteration(
                    ledger, record, active, settled, None, next_active
                )
                records.append(record)
                active = next_active

            # Iteration committed — program state is the consistency
            # point, exactly like the level commit in BFS.
            if checkpointer is not None and active is not None and checkpointer.due(it):
                checkpointer.save_program(
                    ledger=ledger, program=program, iteration=it,
                    active=active, records=records,
                )

    # ------------------------------------------------------------------
    # batched (multi-source) waves
    # ------------------------------------------------------------------

    def run_batch(self, roots, *, faults=None, span_attrs=None) -> BatchRunState:
        """Run up to 64 BFS lanes as one level-synchronous traversal.

        Each *wave* advances every live lane by one level: the host
        prices one shared frontier sync, each component picks a
        direction *per lane* (grouping lanes so every lane still gets
        the direction — and therefore the parents — of its sequential
        run), and each direction group executes the component once for
        all its lanes.  Traffic is charged through the same ledger choke
        point as sequential runs, with lane-word message sizes.

        ``faults`` mirrors :meth:`run`: crash faults abort the *batch*
        with a :class:`~repro.resilience.faults.RankCrashError` annotated
        with the partial ledger — callers replay the whole batch
        (checkpoint/resume is per-root machinery and is not supported
        here).
        """
        host = self.host
        tracer = self.tracer
        metrics = self.metrics
        for name, kernel in self.kernels.items():
            if kernel.num_arcs and not kernel.supports_lanes:
                raise NotImplementedError(
                    f"kernel {name} does not support batched waves"
                )
        lanes = LaneState(host.num_vertices, roots)
        ledger = host.make_ledger(tracer, metrics)
        if faults is not None and faults.enabled:
            ledger.faults = faults
        records: list[IterationRecord] = []
        lane_frontiers: list[np.ndarray] = []
        lane_directions: list[dict] = []
        metrics.counter("msbfs_batches").inc()
        metrics.histogram("msbfs_batch_lanes").observe(lanes.num_lanes)

        with tracer.span(
            "msbfs", category="bfs", lanes=lanes.num_lanes,
            **(span_attrs or {}),
        ):
            try:
                for it in range(host.config.max_iterations):
                    if faults is not None:
                        faults.begin_iteration(it)
                    per_lane = lanes.frontier_sizes()
                    frontier = int(per_lane.sum())
                    if frontier == 0:
                        break
                    metrics.counter("msbfs_waves").inc()
                    metrics.histogram("frontier_size").observe(frontier)
                    with tracer.span(
                        "wave", category="iteration", index=it, frontier=frontier
                    ):
                        self._wave(
                            host, ledger, lanes, it, records,
                            lane_frontiers, lane_directions, per_lane,
                        )
            except Exception as exc:
                from repro.resilience.faults import RankCrashError

                if isinstance(exc, RankCrashError):
                    exc.ledger = ledger
                    exc.completed_iterations = len(records)
                if faults is not None:
                    faults.end_run()
                raise
            host.end_batch_run(ledger, tracer, lanes)
        if faults is not None:
            faults.end_run()
        return BatchRunState(
            lanes=lanes,
            records=records,
            ledger=ledger,
            lane_frontiers=lane_frontiers,
            lane_directions=lane_directions,
        )

    def _wave(
        self, host, ledger, lanes, it, records,
        lane_frontiers, lane_directions, per_lane,
    ) -> None:
        """One batched level: sync, per-component direction groups,
        shared execution, commit (§4.2 freshness per sub-iteration)."""
        tracer = self.tracer
        metrics = self.metrics
        host.begin_batch_iteration(ledger, lanes)
        record = IterationRecord(
            index=it, frontier_size=int(per_lane.sum())
        )
        whole = host.batch_iteration_directions(lanes)
        metrics.counter(
            "direction_mode", mode="fresh" if whole is None else "whole"
        ).inc()
        newly_total = np.zeros(host.num_vertices, dtype=np.uint64)
        dirs_this = {}
        for name, kernel in self.kernels.items():
            if kernel.num_arcs == 0:
                record.directions[name] = "-"
                metrics.counter("subiteration_skips", component=name).inc()
                continue
            if whole is None:
                push_mask, pull_mask = host.batch_component_directions(
                    name, lanes
                )
            else:
                push_mask, pull_mask = whole
            dirs_this[name] = (int(push_mask), int(pull_mask))
            ran = []
            for direction, group in (("push", push_mask), ("pull", pull_mask)):
                if not int(group):
                    continue
                ran.append(direction)
                with tracer.span(
                    name,
                    category="component",
                    iteration=it,
                    direction=direction,
                ) as csp:
                    updates = self.backend.execute_lanes(
                        kernel, direction, group, lanes, ledger, record
                    )
                    newly = lanes.commit(updates)
                    newly_total |= newly
                    activated = sum(int(d.size) for _, d, _ in updates)
                    csp.add_counter(
                        "edges", record.scanned_arcs.get(name, 0)
                    )
                    if record.messages.get(name, 0):
                        csp.add_counter("messages", record.messages[name])
                    csp.add_counter("activated", activated)
                labels = dict(component=name, direction=direction)
                metrics.counter("subiterations", **labels).inc()
                metrics.counter("activated", **labels).inc(activated)
            record.directions[name] = "|".join(ran) if ran else "-"
            metrics.counter(
                "edges_scanned", component=name, direction=record.directions[name]
            ).inc(record.scanned_arcs.get(name, 0))
            metrics.counter(
                "messages", component=name, direction=record.directions[name]
            ).inc(record.messages.get(name, 0))
        host.record_batch_activation(record, newly_total)
        host.end_batch_iteration(ledger, record, lanes, newly_total)
        records.append(record)
        lane_frontiers.append(per_lane)
        lane_directions.append(dirs_this)
        lanes.active = newly_total
