"""The component-kernel layer: per-component traversal kernels behind a
shared level-synchronous scheduler.

The paper's six edge components (EH2EH, E2L, L2E, H2L, L2H, L2L) each
carry their own kernel, direction policy, and message routing (§4.2–§4.4).
This package makes that structure first-class:

- :mod:`repro.core.kernels.base` — the :class:`ComponentKernel` contract
  (one object per component: push/pull execution, compute-rate selection,
  message routing, ledger charging) and the :class:`KernelRegistry`.
- :mod:`repro.core.kernels.fifteend` — the six 1.5D kernels and the
  shared :class:`FifteenDContext` they charge through, registered in
  :data:`FIFTEEND_KERNELS`.
- :mod:`repro.core.kernels.scheduler` — :class:`LevelSyncScheduler`, the
  one densest-first sub-iteration loop every engine runs through
  (``DistributedBFS``, ``ReplayBFS``, and the 1D/2D baselines), and the
  :class:`SchedulerHost` hook surface engines implement.

Adding an engine means mounting a kernel set on the scheduler; adding a
partitioning scheme means writing kernels — the loop, the frontier
semantics, and the tracing shape are shared.
"""

from repro.core.kernels.base import ComponentKernel, KernelRegistry
from repro.core.kernels.fifteend import (
    FIFTEEND_KERNELS,
    FifteenDContext,
    build_fifteend_kernels,
)
from repro.core.kernels.scheduler import LevelSyncScheduler, SchedulerHost

__all__ = [
    "ComponentKernel",
    "KernelRegistry",
    "FifteenDContext",
    "FIFTEEND_KERNELS",
    "build_fifteend_kernels",
    "LevelSyncScheduler",
    "SchedulerHost",
]
