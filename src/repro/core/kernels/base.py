"""The :class:`ComponentKernel` contract and the kernel registry.

A component kernel owns everything one edge component does inside a BFS
iteration: selecting its direction-specific access path (push CSR or
pull groups), pricing its compute at the right kernel rate, routing and
charging its remote messages, and returning the vertices it activated.
The :class:`~repro.core.kernels.scheduler.LevelSyncScheduler` never
looks inside — it only asks ``execute(...)`` in densest-first order and
commits the returned activations, which is what keeps every engine's
frontier/visited/parent semantics identical.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import IterationRecord
from repro.runtime.ledger import TrafficLedger

__all__ = [
    "ComponentKernel",
    "KernelBodySpec",
    "KernelRegistry",
    "EMPTY_ACTIVATION",
]

#: The (newly, parents) pair of a sub-iteration that activated nothing.
EMPTY_ACTIVATION: tuple[np.ndarray, np.ndarray] = (
    np.array([], dtype=np.int64),
    np.array([], dtype=np.int64),
)


@dataclass(frozen=True)
class KernelBodySpec:
    """How an execution backend may split a kernel's *body* off.

    A kernel that publishes a body spec promises its sub-iteration
    factors into a pure traversal body (a range-parameterized selection
    or scan over its component's frozen arrays — see the ``*_range``
    functions in :mod:`repro.core.subgraphs`) followed by a commit
    (``commit_push``/``commit_pull``/lane/program variants) that does all
    ledger charging and activation dedup on the merged body result.  A
    backend may then run the body in parallel worker processes over
    shared-memory views of the arrays; kernels without a spec (returning
    ``None`` from :meth:`ComponentKernel.body_spec`) always execute
    in-process through their plain ``execute*`` methods.
    """

    #: The :class:`~repro.core.subgraphs.SubgraphComponent` whose frozen
    #: arrays the body reads (the backend ships them to shared memory).
    component: object
    #: How this kernel's bottom-up body selects arcs: ``"scan"`` runs the
    #: early-exit grouped pull scan over (candidate=unvisited, active);
    #: ``"query"`` runs the push body over the unvisited mask (the L2L
    #: query/reply model, which has no early exit).
    pull_kind: str = "scan"


class ComponentKernel(ABC):
    """Push/pull execution of one edge component.

    Subclasses fix ``name`` (the component key, e.g. ``"EH2EH"``) and
    implement :meth:`execute`.  A kernel is mounted on exactly one
    scheduler run-loop; it may keep per-engine context (rates, mesh
    splits, per-rank state) but must not own any iteration loop — that
    is the scheduler's.
    """

    #: Component key this kernel executes (set per instance or subclass).
    name: str

    @property
    @abstractmethod
    def num_arcs(self) -> int:
        """Arcs stored in this kernel's component; 0 means the scheduler
        skips the sub-iteration entirely (recorded as direction ``"-"``)."""

    @abstractmethod
    def execute(
        self,
        direction: str,
        active: np.ndarray,
        visited: np.ndarray,
        ledger: TrafficLedger,
        record: IterationRecord,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run one sub-iteration in ``direction`` (``"push"``/``"pull"``).

        Reads the frontier (``active``) and ``visited`` masks, charges
        every kernel and collective the component would run to
        ``ledger``, fills ``record``'s per-component counters
        (``scanned_arcs``, ``messages``), and returns ``(newly,
        parents)`` — the destinations activated this sub-iteration and
        the parent chosen for each.  The scheduler commits them (parent,
        visited, next frontier), so later sub-iterations of the same
        iteration see the fresh state (§4.2's freshness rule).
        """

    def execute_lanes(
        self,
        direction: str,
        group_lanes,
        lanes,
        ledger: TrafficLedger,
        record: IterationRecord,
    ) -> list:
        """Run one sub-iteration for the lane group ``group_lanes`` of a
        batched (multi-source) wave.

        ``lanes`` is a :class:`~repro.core.lanes.LaneState`;
        ``group_lanes`` is the uint64 lane-bit mask of the lanes that
        chose ``direction`` this wave (lanes are grouped by direction so
        each lane's parents stay bit-identical to its sequential run).
        Charges the *shared* batched cost to ``ledger`` and returns a
        list of ``(lane, dsts, parents)`` activation triples, which the
        scheduler commits through ``LaneState.commit``.

        Kernels that cannot execute batched waves leave this
        unimplemented; the batch scheduler refuses to mount them.
        """
        raise NotImplementedError(
            f"kernel {type(self).__name__} does not support lane batching"
        )

    @property
    def supports_lanes(self) -> bool:
        """Whether :meth:`execute_lanes` is implemented."""
        return type(self).execute_lanes is not ComponentKernel.execute_lanes

    def execute_program(
        self,
        program,
        direction: str,
        active: np.ndarray,
        ledger: TrafficLedger,
        record: IterationRecord,
    ) -> np.ndarray:
        """Run one vertex-program sub-iteration in ``direction``.

        Selects this component's arcs for the frontier (push: arcs whose
        source is active; pull: the full runs of the program's candidate
        destinations, filtered to active sources — no early exit, since
        value combines must see every active in-neighbour), charges the
        same kernels and collectives a BFS sub-iteration would at the
        program's ``message_bytes``, then hands the arcs to
        ``program.edge_sweep`` for gather → combine → apply.  Returns the
        vertex IDs the program activated; the scheduler accumulates them
        into the iteration's touched set.  State lives in the program, so
        the kernel stays algorithm-agnostic.

        Kernels that cannot execute programs leave this unimplemented;
        ``LevelSyncScheduler.run_program`` refuses to mount them.
        """
        raise NotImplementedError(
            f"kernel {type(self).__name__} does not support vertex programs"
        )

    @property
    def supports_programs(self) -> bool:
        """Whether :meth:`execute_program` is implemented."""
        return (
            type(self).execute_program is not ComponentKernel.execute_program
        )

    def body_spec(self) -> KernelBodySpec | None:
        """The kernel's body/commit split, or ``None``.

        ``None`` (the default) means the kernel only offers the monolithic
        ``execute*`` path and an execution backend must run it in-process.
        Kernels returning a :class:`KernelBodySpec` additionally implement
        the commit half of the contract:

        - ``commit_push(sel, active, visited, ledger, record)``
        - ``commit_pull(body, active, visited, ledger, record)`` where
          ``body`` is a :class:`~repro.core.subgraphs.PullScan` for
          ``pull_kind="scan"`` or a
          :class:`~repro.core.subgraphs.PushSelection` over the unvisited
          mask for ``pull_kind="query"``;
        - lane variants ``commit_push_lanes``/``commit_pull_lanes`` when
          :attr:`supports_lanes`;
        - program variants ``commit_program_push``/``commit_program_pull``
          when :attr:`supports_programs`.
        """
        return None


class KernelRegistry:
    """Component name -> :class:`ComponentKernel` subclass.

    Engines mount a kernel set by instantiating a registry's classes
    over their components; new components (or replacement kernels for
    existing ones) register under their component key.
    """

    def __init__(self) -> None:
        self._classes: dict[str, type[ComponentKernel]] = {}

    def register(self, name: str):
        """Class decorator: ``@registry.register("H2L")``."""

        def wrap(cls: type[ComponentKernel]) -> type[ComponentKernel]:
            if name in self._classes:
                raise ValueError(f"kernel already registered for {name!r}")
            cls.name = name
            self._classes[name] = cls
            return cls

        return wrap

    def __getitem__(self, name: str) -> type[ComponentKernel]:
        return self._classes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def names(self) -> tuple[str, ...]:
        return tuple(self._classes)
