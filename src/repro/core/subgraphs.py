"""The six 1.5D subgraph components and their traversal primitives.

Each directed arc of the symmetrized graph lands in exactly one of the six
components by the degree classes of its endpoints (§4.1):

========  ===========  ===========  =============================================
name      source       destination  stored at (mesh placement)
========  ===========  ===========  =============================================
EH2EH     E or H       E or H       rank (row(owner(dst)), col(owner(src))) — 2D
E2L       E            L            owner(dst) — with L, like heavy 1D delegation
L2E       L            E            owner(src)
H2L       H            L            rank (row(owner(dst)), col(owner(src))) —
                                    H's column, messaging stays intra-row
L2H       L            H            owner(src) — reverse of H2L
L2L       L            L            owner(src) — plain 1D
========  ===========  ===========  =============================================

:class:`SubgraphComponent` stores one component with two access paths:

- a compact by-source CSR for *push* (top-down): selecting the frontier's
  arcs costs O(frontier sources + selected arcs);
- a (rank, destination)-grouped ordering for *pull* (bottom-up): each
  group is one destination's arc run on one rank, scanned with early exit.

Both paths also carry the owning rank per arc so every sub-iteration can
report exact per-rank work to the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SubgraphComponent",
    "PushSelection",
    "PullScan",
    "PullSelection",
    "LanePullScan",
    "COMPONENT_ORDER",
]

#: Execution order within an iteration: densest (highest-degree endpoints)
#: first, so later sub-iterations see the freshest visited state (§4.2).
COMPONENT_ORDER = ("EH2EH", "E2L", "L2E", "H2L", "L2H", "L2L")


@dataclass(frozen=True)
class PushSelection:
    """Arcs selected by a top-down sub-iteration (sources in frontier)."""

    src: np.ndarray
    dst: np.ndarray
    rank: np.ndarray

    @property
    def num_arcs(self) -> int:
        return int(self.src.size)

    def per_rank(self, num_ranks: int) -> np.ndarray:
        """Arcs handled by each rank (exact load vector)."""
        return np.bincount(self.rank, minlength=num_ranks)


@dataclass(frozen=True)
class PullScan:
    """Result of a bottom-up sub-iteration with early exit."""

    #: Destinations that found a parent, their parent, and the rank that
    #: found it (first hit in deterministic (rank, dst) group order).
    hit_dst: np.ndarray
    hit_src: np.ndarray
    hit_rank: np.ndarray
    #: Arcs scanned by each rank, counting early exit.
    scanned_per_rank: np.ndarray

    @property
    def num_hits(self) -> int:
        return int(self.hit_dst.size)

    @property
    def scanned_arcs(self) -> int:
        return int(self.scanned_per_rank.sum())


@dataclass(frozen=True)
class PullSelection:
    """Arcs selected by a bottom-up sub-iteration *without* early exit.

    Vertex programs with value combines (min-label, sum-of-contrib) must
    see **every** active in-neighbour of a candidate destination, so the
    BFS early exit does not apply: each candidate group is scanned to the
    end and all arcs with an active source are returned.
    """

    src: np.ndarray
    dst: np.ndarray
    rank: np.ndarray
    #: Arcs scanned by each rank — the *full* runs of every candidate
    #: group, not just the selected arcs.
    scanned_per_rank: np.ndarray

    @property
    def num_arcs(self) -> int:
        return int(self.src.size)

    @property
    def scanned_arcs(self) -> int:
        return int(self.scanned_per_rank.sum())


@dataclass(frozen=True)
class LanePullScan:
    """Result of a bottom-up sub-iteration shared by up to 64 lanes."""

    #: Per-lane hits: ``(lane, hit_dst, hit_src)`` triples, each lane's
    #: winners chosen by exactly the sequential :class:`PullScan` rule.
    updates: list
    #: Arcs scanned by each rank; a group's scan depth is the deepest
    #: early exit any participating lane needed.
    scanned_per_rank: np.ndarray
    #: Unique (dst, rank) hit messages across all lanes — one wire
    #: message carries a destination plus its 64-bit lane word.
    msg_dst: np.ndarray
    msg_rank: np.ndarray

    @property
    def num_messages(self) -> int:
        return int(self.msg_dst.size)

    @property
    def scanned_arcs(self) -> int:
        return int(self.scanned_per_rank.sum())


class SubgraphComponent:
    """One of the six arc components, frozen for traversal."""

    def __init__(
        self,
        name: str,
        src: np.ndarray,
        dst: np.ndarray,
        rank: np.ndarray,
        num_ranks: int,
    ) -> None:
        self.name = name
        self.num_ranks = int(num_ranks)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        rank = np.asarray(rank, dtype=np.int64)
        if not (src.shape == dst.shape == rank.shape):
            raise ValueError("src/dst/rank arrays must have equal shape")
        if rank.size and (rank.min() < 0 or rank.max() >= num_ranks):
            raise ValueError("arc rank out of range")
        self.num_arcs = int(src.size)

        # --- by-source CSR (push path) --------------------------------
        order = np.lexsort((dst, src))
        s_sorted = src[order]
        self._push_dst = dst[order]
        self._push_rank = rank[order]
        if s_sorted.size:
            boundaries = np.concatenate(
                ([True], s_sorted[1:] != s_sorted[:-1])
            )
            starts = np.flatnonzero(boundaries)
            self.src_ids = s_sorted[starts]
            self.src_indptr = np.concatenate((starts, [s_sorted.size])).astype(
                np.int64
            )
        else:
            self.src_ids = np.array([], dtype=np.int64)
            self.src_indptr = np.array([0], dtype=np.int64)

        # --- (rank, dst) groups (pull path) ----------------------------
        order2 = np.lexsort((src, dst, rank))
        self._pull_src = src[order2]
        d_sorted = dst[order2]
        r_sorted = rank[order2]
        if d_sorted.size:
            boundaries = np.concatenate(
                (
                    [True],
                    (d_sorted[1:] != d_sorted[:-1]) | (r_sorted[1:] != r_sorted[:-1]),
                )
            )
            starts = np.flatnonzero(boundaries)
            self.grp_ptr = np.concatenate((starts, [d_sorted.size])).astype(np.int64)
            self.grp_dst = d_sorted[starts]
            self.grp_rank = r_sorted[starts]
        else:
            self.grp_ptr = np.array([0], dtype=np.int64)
            self.grp_dst = np.array([], dtype=np.int64)
            self.grp_rank = np.array([], dtype=np.int64)

        #: Exact arcs stored per rank (Fig. 13's load-balance data).
        self.arcs_per_rank = np.bincount(rank, minlength=num_ranks)

    # ------------------------------------------------------------------

    @property
    def num_groups(self) -> int:
        return int(self.grp_dst.size)

    def arcs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All arcs as ``(src, dst, rank)`` (push order)."""
        src = np.repeat(self.src_ids, np.diff(self.src_indptr))
        return src, self._push_dst.copy(), self._push_rank.copy()

    # ------------------------------------------------------------------
    # push
    # ------------------------------------------------------------------

    def push_select(self, active: np.ndarray) -> PushSelection:
        """Arcs whose source is in the frontier.

        ``active`` is a boolean mask over all vertices.  Cost is
        O(unique sources + selected arcs) — the frontier's arcs only.
        """
        if self.num_arcs == 0:
            empty = np.array([], dtype=np.int64)
            return PushSelection(empty, empty, empty)
        sel_srcs = np.flatnonzero(active[self.src_ids])
        if sel_srcs.size == 0:
            empty = np.array([], dtype=np.int64)
            return PushSelection(empty, empty, empty)
        starts = self.src_indptr[sel_srcs]
        lens = self.src_indptr[sel_srcs + 1] - starts
        total = int(lens.sum())
        arc_src = np.repeat(self.src_ids[sel_srcs], lens)
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        idx = np.repeat(starts, lens) + offs
        return PushSelection(arc_src, self._push_dst[idx], self._push_rank[idx])

    # ------------------------------------------------------------------
    # pull
    # ------------------------------------------------------------------

    def pull_scan(
        self, candidate_dst: np.ndarray, active_src: np.ndarray
    ) -> PullScan:
        """Bottom-up scan with early exit.

        For every (rank, dst) group whose destination satisfies
        ``candidate_dst`` (a boolean mask — typically "unvisited"), scan the
        group's arcs in order until the first source satisfying
        ``active_src``; count exactly the scanned arcs (paper §2.1.2 early
        exit, available because these arcs are rank-local).

        When several ranks hit the same destination, the winner is the
        lowest (rank, position) — deterministic.
        """
        if self.num_groups == 0:
            empty = np.array([], dtype=np.int64)
            return PullScan(
                empty, empty, empty, np.zeros(self.num_ranks, dtype=np.int64)
            )
        cand_groups = np.flatnonzero(candidate_dst[self.grp_dst])
        if cand_groups.size == 0:
            empty = np.array([], dtype=np.int64)
            return PullScan(
                empty, empty, empty, np.zeros(self.num_ranks, dtype=np.int64)
            )
        starts = self.grp_ptr[cand_groups]
        lens = self.grp_ptr[cand_groups + 1] - starts
        total = int(lens.sum())
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        idx = np.repeat(starts, lens) + offs
        srcs = self._pull_src[idx]
        grp_of_arc = np.repeat(np.arange(cand_groups.size, dtype=np.int64), lens)

        hit = active_src[srcs]
        # first hit position within each group
        first_pos = np.full(cand_groups.size, -1, dtype=np.int64)
        if np.any(hit):
            hit_idx = np.flatnonzero(hit)
            # reversed minimum trick: np.minimum.at
            np.minimum.at(
                first_pos_holder := np.full(cand_groups.size, total + 1, np.int64),
                grp_of_arc[hit_idx],
                offs[hit_idx],
            )
            found = first_pos_holder <= total
            first_pos[found] = first_pos_holder[found]
        scanned = np.where(first_pos >= 0, first_pos + 1, lens)
        scanned_per_rank = np.bincount(
            self.grp_rank[cand_groups],
            weights=scanned,
            minlength=self.num_ranks,
        ).astype(np.int64)

        hit_groups = np.flatnonzero(first_pos >= 0)
        if hit_groups.size == 0:
            empty = np.array([], dtype=np.int64)
            return PullScan(empty, empty, empty, scanned_per_rank)
        g_dst = self.grp_dst[cand_groups[hit_groups]]
        g_rank = self.grp_rank[cand_groups[hit_groups]]
        g_src = self._pull_src[starts[hit_groups] + first_pos[hit_groups]]
        # deterministic cross-rank winner per destination: groups are
        # already ordered by (rank, dst); reorder hits by (dst, rank) and
        # keep the first.
        order = np.lexsort((g_rank, g_dst))
        g_dst, g_rank, g_src = g_dst[order], g_rank[order], g_src[order]
        uniq, first = np.unique(g_dst, return_index=True)
        return PullScan(uniq, g_src[first], g_rank[first], scanned_per_rank)

    def pull_select(
        self, candidate_dst: np.ndarray, active_src: np.ndarray
    ) -> PullSelection:
        """Bottom-up arc selection without early exit (vertex programs).

        Every (rank, dst) group whose destination satisfies
        ``candidate_dst`` is scanned end to end; arcs whose source
        satisfies ``active_src`` are returned.  With ``candidate_dst``
        all-true the selected arc *set* equals ``push_select(active_src)``
        (ordering differs: pull order is grouped by (rank, dst)), which is
        what makes direction choice value-neutral for commutative
        combines.
        """
        empty = np.array([], dtype=np.int64)
        no_scan = np.zeros(self.num_ranks, dtype=np.int64)
        if self.num_groups == 0:
            return PullSelection(empty, empty, empty, no_scan)
        cand_groups = np.flatnonzero(candidate_dst[self.grp_dst])
        if cand_groups.size == 0:
            return PullSelection(empty, empty, empty, no_scan)
        starts = self.grp_ptr[cand_groups]
        lens = self.grp_ptr[cand_groups + 1] - starts
        total = int(lens.sum())
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        idx = np.repeat(starts, lens) + offs
        srcs = self._pull_src[idx]
        scanned_per_rank = np.bincount(
            self.grp_rank[cand_groups],
            weights=lens,
            minlength=self.num_ranks,
        ).astype(np.int64)
        keep = active_src[srcs]
        if not np.any(keep):
            return PullSelection(empty, empty, empty, scanned_per_rank)
        dst_of_arc = np.repeat(self.grp_dst[cand_groups], lens)
        rank_of_arc = np.repeat(self.grp_rank[cand_groups], lens)
        return PullSelection(
            srcs[keep], dst_of_arc[keep], rank_of_arc[keep], scanned_per_rank
        )

    def pull_scan_lanes(
        self, candidate_bits: np.ndarray, active_bits: np.ndarray, group_lanes
    ) -> LanePullScan:
        """Bottom-up scan shared by the lanes of ``group_lanes``.

        ``candidate_bits``/``active_bits`` are per-vertex lane words
        already restricted to the group's lanes.  Per lane the hits and
        the early-exit depths are exactly what :meth:`pull_scan` would
        produce for that lane's boolean masks; a group's *charged* scan
        depth is the max over its participating lanes (the batched
        kernel scans once and every lane reads the shared stream).
        """
        from repro.core.lanes import iter_lanes, lane_bit

        empty = np.array([], dtype=np.int64)
        no_scan = np.zeros(self.num_ranks, dtype=np.int64)
        if self.num_groups == 0:
            return LanePullScan([], no_scan, empty, empty)
        grp_cand_bits = candidate_bits[self.grp_dst]
        cand_groups = np.flatnonzero(grp_cand_bits != 0)
        if cand_groups.size == 0:
            return LanePullScan([], no_scan, empty, empty)
        grp_cand_bits = grp_cand_bits[cand_groups]
        starts = self.grp_ptr[cand_groups]
        lens = self.grp_ptr[cand_groups + 1] - starts
        total = int(lens.sum())
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        idx = np.repeat(starts, lens) + offs
        srcs = self._pull_src[idx]
        grp_of_arc = np.repeat(np.arange(cand_groups.size, dtype=np.int64), lens)
        # An arc hits for lane l iff its source is active in l AND the
        # group's destination is still a candidate in l.
        hit_bits = active_bits[srcs] & grp_cand_bits[grp_of_arc]

        scanned_max = np.zeros(cand_groups.size, dtype=np.int64)
        updates = []
        win_dst, win_rank = [], []
        for lane in iter_lanes(group_lanes):
            bit = lane_bit(lane)
            lane_cand = (grp_cand_bits & bit) != 0
            lane_hit = (hit_bits & bit) != 0
            first_pos = np.full(cand_groups.size, -1, dtype=np.int64)
            if np.any(lane_hit):
                hit_idx = np.flatnonzero(lane_hit)
                np.minimum.at(
                    holder := np.full(cand_groups.size, total + 1, np.int64),
                    grp_of_arc[hit_idx],
                    offs[hit_idx],
                )
                found = holder <= total
                first_pos[found] = holder[found]
            # Early exit per lane: first hit + 1, the full group when the
            # lane scanned it dry, nothing when the lane wasn't pulling
            # this destination at all.
            scanned_lane = np.where(
                first_pos >= 0,
                first_pos + 1,
                np.where(lane_cand, lens, 0),
            )
            np.maximum(scanned_max, scanned_lane, out=scanned_max)
            hit_groups = np.flatnonzero(first_pos >= 0)
            if hit_groups.size == 0:
                continue
            g_dst = self.grp_dst[cand_groups[hit_groups]]
            g_rank = self.grp_rank[cand_groups[hit_groups]]
            g_src = self._pull_src[starts[hit_groups] + first_pos[hit_groups]]
            order = np.lexsort((g_rank, g_dst))
            g_dst, g_rank, g_src = g_dst[order], g_rank[order], g_src[order]
            uniq, first = np.unique(g_dst, return_index=True)
            updates.append((lane, uniq, g_src[first]))
            win_dst.append(uniq)
            win_rank.append(g_rank[first])

        scanned_per_rank = np.bincount(
            self.grp_rank[cand_groups],
            weights=scanned_max,
            minlength=self.num_ranks,
        ).astype(np.int64)
        if not win_dst:
            return LanePullScan(updates, scanned_per_rank, empty, empty)
        all_dst = np.concatenate(win_dst)
        all_rank = np.concatenate(win_rank)
        # One wire message per unique (dst, rank) pair — the lane word
        # rides along, so overlapping lanes share the message.
        key = all_dst * np.int64(self.num_ranks) + all_rank
        _, first = np.unique(key, return_index=True)
        return LanePullScan(
            updates, scanned_per_rank, all_dst[first], all_rank[first]
        )
