"""The six 1.5D subgraph components and their traversal primitives.

Each directed arc of the symmetrized graph lands in exactly one of the six
components by the degree classes of its endpoints (§4.1):

========  ===========  ===========  =============================================
name      source       destination  stored at (mesh placement)
========  ===========  ===========  =============================================
EH2EH     E or H       E or H       rank (row(owner(dst)), col(owner(src))) — 2D
E2L       E            L            owner(dst) — with L, like heavy 1D delegation
L2E       L            E            owner(src)
H2L       H            L            rank (row(owner(dst)), col(owner(src))) —
                                    H's column, messaging stays intra-row
L2H       L            H            owner(src) — reverse of H2L
L2L       L            L            owner(src) — plain 1D
========  ===========  ===========  =============================================

:class:`SubgraphComponent` stores one component with two access paths:

- a compact by-source CSR for *push* (top-down): selecting the frontier's
  arcs costs O(frontier sources + selected arcs);
- a (rank, destination)-grouped ordering for *pull* (bottom-up): each
  group is one destination's arc run on one rank, scanned with early exit.

Both paths also carry the owning rank per arc so every sub-iteration can
report exact per-rank work to the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SubgraphComponent",
    "PushSelection",
    "PullScan",
    "PullSelection",
    "LanePullScan",
    "COMPONENT_ORDER",
    "push_select_range",
    "pull_scan_range",
    "pull_select_range",
    "pull_scan_lanes_range",
    "dedup_pull_hits",
    "dedup_lane_hits",
    "arc_keys",
    "merge_arc_delta",
]

#: Execution order within an iteration: densest (highest-degree endpoints)
#: first, so later sub-iterations see the freshest visited state (§4.2).
COMPONENT_ORDER = ("EH2EH", "E2L", "L2E", "H2L", "L2H", "L2L")


@dataclass(frozen=True)
class PushSelection:
    """Arcs selected by a top-down sub-iteration (sources in frontier)."""

    src: np.ndarray
    dst: np.ndarray
    rank: np.ndarray

    @property
    def num_arcs(self) -> int:
        return int(self.src.size)

    def per_rank(self, num_ranks: int) -> np.ndarray:
        """Arcs handled by each rank (exact load vector)."""
        return np.bincount(self.rank, minlength=num_ranks)


@dataclass(frozen=True)
class PullScan:
    """Result of a bottom-up sub-iteration with early exit."""

    #: Destinations that found a parent, their parent, and the rank that
    #: found it (first hit in deterministic (rank, dst) group order).
    hit_dst: np.ndarray
    hit_src: np.ndarray
    hit_rank: np.ndarray
    #: Arcs scanned by each rank, counting early exit.
    scanned_per_rank: np.ndarray

    @property
    def num_hits(self) -> int:
        return int(self.hit_dst.size)

    @property
    def scanned_arcs(self) -> int:
        return int(self.scanned_per_rank.sum())


@dataclass(frozen=True)
class PullSelection:
    """Arcs selected by a bottom-up sub-iteration *without* early exit.

    Vertex programs with value combines (min-label, sum-of-contrib) must
    see **every** active in-neighbour of a candidate destination, so the
    BFS early exit does not apply: each candidate group is scanned to the
    end and all arcs with an active source are returned.
    """

    src: np.ndarray
    dst: np.ndarray
    rank: np.ndarray
    #: Arcs scanned by each rank — the *full* runs of every candidate
    #: group, not just the selected arcs.
    scanned_per_rank: np.ndarray

    @property
    def num_arcs(self) -> int:
        return int(self.src.size)

    @property
    def scanned_arcs(self) -> int:
        return int(self.scanned_per_rank.sum())


@dataclass(frozen=True)
class LanePullScan:
    """Result of a bottom-up sub-iteration shared by up to 64 lanes."""

    #: Per-lane hits: ``(lane, hit_dst, hit_src)`` triples, each lane's
    #: winners chosen by exactly the sequential :class:`PullScan` rule.
    updates: list
    #: Arcs scanned by each rank; a group's scan depth is the deepest
    #: early exit any participating lane needed.
    scanned_per_rank: np.ndarray
    #: Unique (dst, rank) hit messages across all lanes — one wire
    #: message carries a destination plus its 64-bit lane word.
    msg_dst: np.ndarray
    msg_rank: np.ndarray

    @property
    def num_messages(self) -> int:
        return int(self.msg_dst.size)

    @property
    def scanned_arcs(self) -> int:
        return int(self.scanned_per_rank.sum())


# ----------------------------------------------------------------------
# Pure traversal bodies over explicit arrays.
#
# Each function computes one direction's arc selection / scan for a
# contiguous *range* of push sources (slots ``[lo, hi)`` of the by-source
# CSR) or pull groups.  They close over nothing: every input is an array
# argument, so an execution backend can run them in worker processes over
# shared-memory views of the same arrays.  The :class:`SubgraphComponent`
# methods below are the ``lo=0, hi=size`` full-range calls — concatenating
# the results of a range partition (in ascending range order) reproduces
# the full-range result exactly, because selection order is slot/group
# order and a slot/group lives in exactly one range.
# ----------------------------------------------------------------------


def push_select_range(
    src_ids, src_indptr, push_dst, push_rank, active, lo, hi
):
    """Arcs of source slots ``[lo, hi)`` whose source is in ``active``.

    Returns ``(src, dst, rank)`` arrays in slot order.
    """
    empty = np.array([], dtype=np.int64)
    sel_srcs = np.flatnonzero(active[src_ids[lo:hi]]) + lo
    if sel_srcs.size == 0:
        return empty, empty, empty
    starts = src_indptr[sel_srcs]
    lens = src_indptr[sel_srcs + 1] - starts
    total = int(lens.sum())
    arc_src = np.repeat(src_ids[sel_srcs], lens)
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lens) - lens, lens
    )
    idx = np.repeat(starts, lens) + offs
    return arc_src, push_dst[idx], push_rank[idx]


def pull_scan_range(
    grp_ptr,
    grp_dst,
    grp_rank,
    pull_src,
    candidate_dst,
    active_src,
    lo,
    hi,
    num_ranks,
):
    """Early-exit scan of pull groups ``[lo, hi)``.

    Returns the *pre-dedup* per-group hits ``(g_dst, g_src, g_rank)`` in
    group order plus the exact ``scanned_per_rank`` load vector; feed the
    hits (or a range-partition concatenation of them) to
    :func:`dedup_pull_hits` for the deterministic cross-rank winners.
    """
    empty = np.array([], dtype=np.int64)
    no_scan = np.zeros(num_ranks, dtype=np.int64)
    if hi <= lo:
        return empty, empty, empty, no_scan
    cand_groups = np.flatnonzero(candidate_dst[grp_dst[lo:hi]]) + lo
    if cand_groups.size == 0:
        return empty, empty, empty, no_scan
    starts = grp_ptr[cand_groups]
    lens = grp_ptr[cand_groups + 1] - starts
    total = int(lens.sum())
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lens) - lens, lens
    )
    idx = np.repeat(starts, lens) + offs
    srcs = pull_src[idx]
    grp_of_arc = np.repeat(np.arange(cand_groups.size, dtype=np.int64), lens)

    hit = active_src[srcs]
    # first hit position within each group
    first_pos = np.full(cand_groups.size, -1, dtype=np.int64)
    if np.any(hit):
        hit_idx = np.flatnonzero(hit)
        # reversed minimum trick: np.minimum.at
        np.minimum.at(
            first_pos_holder := np.full(cand_groups.size, total + 1, np.int64),
            grp_of_arc[hit_idx],
            offs[hit_idx],
        )
        found = first_pos_holder <= total
        first_pos[found] = first_pos_holder[found]
    scanned = np.where(first_pos >= 0, first_pos + 1, lens)
    scanned_per_rank = np.bincount(
        grp_rank[cand_groups], weights=scanned, minlength=num_ranks
    ).astype(np.int64)

    hit_groups = np.flatnonzero(first_pos >= 0)
    if hit_groups.size == 0:
        return empty, empty, empty, scanned_per_rank
    g_dst = grp_dst[cand_groups[hit_groups]]
    g_rank = grp_rank[cand_groups[hit_groups]]
    g_src = pull_src[starts[hit_groups] + first_pos[hit_groups]]
    return g_dst, g_src, g_rank, scanned_per_rank


def dedup_pull_hits(g_dst, g_src, g_rank):
    """Deterministic cross-rank winner per destination: groups arrive in
    ascending group (= (rank, dst)) order; reorder by (dst, rank) and keep
    the first hit of each destination."""
    order = np.lexsort((g_rank, g_dst))
    g_dst, g_rank, g_src = g_dst[order], g_rank[order], g_src[order]
    uniq, first = np.unique(g_dst, return_index=True)
    return uniq, g_src[first], g_rank[first]


def pull_select_range(
    grp_ptr,
    grp_dst,
    grp_rank,
    pull_src,
    candidate_dst,
    active_src,
    lo,
    hi,
    num_ranks,
):
    """Full-run (no early exit) arc selection of pull groups ``[lo, hi)``.

    Returns ``(src, dst, rank, scanned_per_rank)`` in group order.
    """
    empty = np.array([], dtype=np.int64)
    no_scan = np.zeros(num_ranks, dtype=np.int64)
    if hi <= lo:
        return empty, empty, empty, no_scan
    cand_groups = np.flatnonzero(candidate_dst[grp_dst[lo:hi]]) + lo
    if cand_groups.size == 0:
        return empty, empty, empty, no_scan
    starts = grp_ptr[cand_groups]
    lens = grp_ptr[cand_groups + 1] - starts
    total = int(lens.sum())
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lens) - lens, lens
    )
    idx = np.repeat(starts, lens) + offs
    srcs = pull_src[idx]
    scanned_per_rank = np.bincount(
        grp_rank[cand_groups], weights=lens, minlength=num_ranks
    ).astype(np.int64)
    keep = active_src[srcs]
    if not np.any(keep):
        return empty, empty, empty, scanned_per_rank
    dst_of_arc = np.repeat(grp_dst[cand_groups], lens)
    rank_of_arc = np.repeat(grp_rank[cand_groups], lens)
    return srcs[keep], dst_of_arc[keep], rank_of_arc[keep], scanned_per_rank


def pull_scan_lanes_range(
    grp_ptr,
    grp_dst,
    grp_rank,
    pull_src,
    candidate_bits,
    active_bits,
    group_lanes,
    lo,
    hi,
    num_ranks,
):
    """Lane-shared early-exit scan of pull groups ``[lo, hi)``.

    Returns ``(lane_hits, scanned_per_rank)`` where ``lane_hits`` is a
    list of *pre-dedup* ``(lane, g_dst, g_src, g_rank)`` tuples in
    ascending lane order; feed it (or a per-lane concatenation over a
    range partition) to :func:`dedup_lane_hits`.
    """
    from repro.core.lanes import iter_lanes, lane_bit

    no_scan = np.zeros(num_ranks, dtype=np.int64)
    if hi <= lo:
        return [], no_scan
    grp_cand_bits = candidate_bits[grp_dst[lo:hi]]
    cand_rel = np.flatnonzero(grp_cand_bits != 0)
    if cand_rel.size == 0:
        return [], no_scan
    cand_groups = cand_rel + lo
    grp_cand_bits = grp_cand_bits[cand_rel]
    starts = grp_ptr[cand_groups]
    lens = grp_ptr[cand_groups + 1] - starts
    total = int(lens.sum())
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lens) - lens, lens
    )
    idx = np.repeat(starts, lens) + offs
    srcs = pull_src[idx]
    grp_of_arc = np.repeat(np.arange(cand_groups.size, dtype=np.int64), lens)
    # An arc hits for lane l iff its source is active in l AND the
    # group's destination is still a candidate in l.
    hit_bits = active_bits[srcs] & grp_cand_bits[grp_of_arc]

    scanned_max = np.zeros(cand_groups.size, dtype=np.int64)
    lane_hits = []
    for lane in iter_lanes(group_lanes):
        bit = lane_bit(lane)
        lane_cand = (grp_cand_bits & bit) != 0
        lane_hit = (hit_bits & bit) != 0
        first_pos = np.full(cand_groups.size, -1, dtype=np.int64)
        if np.any(lane_hit):
            hit_idx = np.flatnonzero(lane_hit)
            np.minimum.at(
                holder := np.full(cand_groups.size, total + 1, np.int64),
                grp_of_arc[hit_idx],
                offs[hit_idx],
            )
            found = holder <= total
            first_pos[found] = holder[found]
        # Early exit per lane: first hit + 1, the full group when the
        # lane scanned it dry, nothing when the lane wasn't pulling
        # this destination at all.
        scanned_lane = np.where(
            first_pos >= 0,
            first_pos + 1,
            np.where(lane_cand, lens, 0),
        )
        np.maximum(scanned_max, scanned_lane, out=scanned_max)
        hit_groups = np.flatnonzero(first_pos >= 0)
        if hit_groups.size == 0:
            continue
        lane_hits.append(
            (
                lane,
                grp_dst[cand_groups[hit_groups]],
                pull_src[starts[hit_groups] + first_pos[hit_groups]],
                grp_rank[cand_groups[hit_groups]],
            )
        )

    scanned_per_rank = np.bincount(
        grp_rank[cand_groups], weights=scanned_max, minlength=num_ranks
    ).astype(np.int64)
    return lane_hits, scanned_per_rank


def dedup_lane_hits(lane_hits, num_ranks):
    """Per-lane winners plus the unique (dst, rank) wire messages.

    ``lane_hits`` must hold one pre-dedup ``(lane, g_dst, g_src, g_rank)``
    tuple per lane in ascending lane order, each lane's hits in ascending
    group order; returns ``(updates, msg_dst, msg_rank)`` exactly as the
    sequential :meth:`SubgraphComponent.pull_scan_lanes` builds them.
    """
    empty = np.array([], dtype=np.int64)
    updates = []
    win_dst, win_rank = [], []
    for lane, g_dst, g_src, g_rank in lane_hits:
        order = np.lexsort((g_rank, g_dst))
        g_dst, g_rank, g_src = g_dst[order], g_rank[order], g_src[order]
        uniq, first = np.unique(g_dst, return_index=True)
        updates.append((lane, uniq, g_src[first]))
        win_dst.append(uniq)
        win_rank.append(g_rank[first])
    if not win_dst:
        return updates, empty, empty
    all_dst = np.concatenate(win_dst)
    all_rank = np.concatenate(win_rank)
    # One wire message per unique (dst, rank) pair — the lane word
    # rides along, so overlapping lanes share the message.
    key = all_dst * np.int64(num_ranks) + all_rank
    _, first = np.unique(key, return_index=True)
    return updates, all_dst[first], all_rank[first]


class SubgraphComponent:
    """One of the six arc components, frozen for traversal."""

    def __init__(
        self,
        name: str,
        src: np.ndarray,
        dst: np.ndarray,
        rank: np.ndarray,
        num_ranks: int,
    ) -> None:
        self.name = name
        self.num_ranks = int(num_ranks)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        rank = np.asarray(rank, dtype=np.int64)
        if not (src.shape == dst.shape == rank.shape):
            raise ValueError("src/dst/rank arrays must have equal shape")
        if rank.size and (rank.min() < 0 or rank.max() >= num_ranks):
            raise ValueError("arc rank out of range")
        self.num_arcs = int(src.size)

        # --- by-source CSR (push path) --------------------------------
        order = np.lexsort((dst, src))
        s_sorted = src[order]
        self._push_dst = dst[order]
        self._push_rank = rank[order]
        if s_sorted.size:
            boundaries = np.concatenate(
                ([True], s_sorted[1:] != s_sorted[:-1])
            )
            starts = np.flatnonzero(boundaries)
            self.src_ids = s_sorted[starts]
            self.src_indptr = np.concatenate((starts, [s_sorted.size])).astype(
                np.int64
            )
        else:
            self.src_ids = np.array([], dtype=np.int64)
            self.src_indptr = np.array([0], dtype=np.int64)

        # --- (rank, dst) groups (pull path) ----------------------------
        order2 = np.lexsort((src, dst, rank))
        self._pull_src = src[order2]
        d_sorted = dst[order2]
        r_sorted = rank[order2]
        if d_sorted.size:
            boundaries = np.concatenate(
                (
                    [True],
                    (d_sorted[1:] != d_sorted[:-1]) | (r_sorted[1:] != r_sorted[:-1]),
                )
            )
            starts = np.flatnonzero(boundaries)
            self.grp_ptr = np.concatenate((starts, [d_sorted.size])).astype(np.int64)
            self.grp_dst = d_sorted[starts]
            self.grp_rank = r_sorted[starts]
        else:
            self.grp_ptr = np.array([0], dtype=np.int64)
            self.grp_dst = np.array([], dtype=np.int64)
            self.grp_rank = np.array([], dtype=np.int64)

        #: Exact arcs stored per rank (Fig. 13's load-balance data).
        self.arcs_per_rank = np.bincount(rank, minlength=num_ranks)

    # ------------------------------------------------------------------

    @property
    def num_groups(self) -> int:
        return int(self.grp_dst.size)

    def arcs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All arcs as ``(src, dst, rank)`` (push order)."""
        src = np.repeat(self.src_ids, np.diff(self.src_indptr))
        return src, self._push_dst.copy(), self._push_rank.copy()

    def body_arrays(self) -> dict[str, np.ndarray]:
        """The frozen arrays a parallel backend ships to its substrate.

        Exactly the inputs of the module-level range functions; treat the
        returned arrays as immutable (they *are* the traversal state).
        """
        return {
            "src_ids": self.src_ids,
            "src_indptr": self.src_indptr,
            "push_dst": self._push_dst,
            "push_rank": self._push_rank,
            "pull_src": self._pull_src,
            "grp_ptr": self.grp_ptr,
            "grp_dst": self.grp_dst,
            "grp_rank": self.grp_rank,
            "num_ranks": np.array([self.num_ranks], dtype=np.int64),
        }

    # ------------------------------------------------------------------
    # push
    # ------------------------------------------------------------------

    def push_select(self, active: np.ndarray) -> PushSelection:
        """Arcs whose source is in the frontier.

        ``active`` is a boolean mask over all vertices.  Cost is
        O(unique sources + selected arcs) — the frontier's arcs only.
        """
        src, dst, rank = push_select_range(
            self.src_ids,
            self.src_indptr,
            self._push_dst,
            self._push_rank,
            active,
            0,
            self.src_ids.size,
        )
        return PushSelection(src, dst, rank)

    # ------------------------------------------------------------------
    # pull
    # ------------------------------------------------------------------

    def pull_scan(
        self, candidate_dst: np.ndarray, active_src: np.ndarray
    ) -> PullScan:
        """Bottom-up scan with early exit.

        For every (rank, dst) group whose destination satisfies
        ``candidate_dst`` (a boolean mask — typically "unvisited"), scan the
        group's arcs in order until the first source satisfying
        ``active_src``; count exactly the scanned arcs (paper §2.1.2 early
        exit, available because these arcs are rank-local).

        When several ranks hit the same destination, the winner is the
        lowest (rank, position) — deterministic.
        """
        g_dst, g_src, g_rank, scanned_per_rank = pull_scan_range(
            self.grp_ptr,
            self.grp_dst,
            self.grp_rank,
            self._pull_src,
            candidate_dst,
            active_src,
            0,
            self.num_groups,
            self.num_ranks,
        )
        if g_dst.size == 0:
            empty = np.array([], dtype=np.int64)
            return PullScan(empty, empty, empty, scanned_per_rank)
        hit_dst, hit_src, hit_rank = dedup_pull_hits(g_dst, g_src, g_rank)
        return PullScan(hit_dst, hit_src, hit_rank, scanned_per_rank)

    def pull_select(
        self, candidate_dst: np.ndarray, active_src: np.ndarray
    ) -> PullSelection:
        """Bottom-up arc selection without early exit (vertex programs).

        Every (rank, dst) group whose destination satisfies
        ``candidate_dst`` is scanned end to end; arcs whose source
        satisfies ``active_src`` are returned.  With ``candidate_dst``
        all-true the selected arc *set* equals ``push_select(active_src)``
        (ordering differs: pull order is grouped by (rank, dst)), which is
        what makes direction choice value-neutral for commutative
        combines.
        """
        src, dst, rank, scanned_per_rank = pull_select_range(
            self.grp_ptr,
            self.grp_dst,
            self.grp_rank,
            self._pull_src,
            candidate_dst,
            active_src,
            0,
            self.num_groups,
            self.num_ranks,
        )
        return PullSelection(src, dst, rank, scanned_per_rank)

    def pull_scan_lanes(
        self, candidate_bits: np.ndarray, active_bits: np.ndarray, group_lanes
    ) -> LanePullScan:
        """Bottom-up scan shared by the lanes of ``group_lanes``.

        ``candidate_bits``/``active_bits`` are per-vertex lane words
        already restricted to the group's lanes.  Per lane the hits and
        the early-exit depths are exactly what :meth:`pull_scan` would
        produce for that lane's boolean masks; a group's *charged* scan
        depth is the max over its participating lanes (the batched
        kernel scans once and every lane reads the shared stream).
        """
        lane_hits, scanned_per_rank = pull_scan_lanes_range(
            self.grp_ptr,
            self.grp_dst,
            self.grp_rank,
            self._pull_src,
            candidate_bits,
            active_bits,
            group_lanes,
            0,
            self.num_groups,
            self.num_ranks,
        )
        updates, msg_dst, msg_rank = dedup_lane_hits(lane_hits, self.num_ranks)
        return LanePullScan(updates, scanned_per_rank, msg_dst, msg_rank)


# ----------------------------------------------------------------------
# incremental repair primitives (repro.dynamic)
# ----------------------------------------------------------------------


def arc_keys(src: np.ndarray, dst: np.ndarray, num_vertices: int) -> np.ndarray:
    """Directed-arc identity key ``src * n + dst`` (``int64``).

    The key space is injective while ``n**2`` fits in int64 (n < ~3e9,
    far beyond anything the simulator holds in memory), so set algebra
    on arcs — the overlay diffs below — is plain sorted-array work.
    """
    return src.astype(np.int64) * np.int64(num_vertices) + dst.astype(np.int64)


def merge_arc_delta(
    component: SubgraphComponent,
    *,
    add_src: np.ndarray,
    add_dst: np.ndarray,
    add_rank: np.ndarray,
    drop_src: np.ndarray,
    drop_dst: np.ndarray,
    num_vertices: int,
) -> SubgraphComponent:
    """Merge a pending overlay into a frozen component (compaction).

    Drops every base arc whose directed ``(src, dst)`` pair appears in
    the drop set, appends the added arcs, and re-freezes.  Because the
    component's packed orders are value sorts of the arc content (push:
    ``(src, dst)``; pull: ``(rank, dst, src)``), merging a delta and
    rebuilding from scratch produce bit-identical arrays whenever the
    surviving arc *sets* match — the property the incremental-vs-rebuild
    equivalence gate checks.  The in-simulator merge re-sorts for
    simplicity; the honest cost (a linear merge of two sorted runs plus
    an alltoallv of only the delta arcs) is what
    :class:`repro.dynamic.repair.IncrementalGraph` charges its ledger.

    Arcs must be unique per directed pair within the component (true for
    any deduplicated undirected edge set, which is what the dynamic
    layer maintains).
    """
    base_src, base_dst, base_rank = component.arcs()
    if drop_src.size:
        keys = arc_keys(base_src, base_dst, num_vertices)
        drop = np.sort(arc_keys(drop_src, drop_dst, num_vertices))
        pos = np.searchsorted(drop, keys)
        pos[pos == drop.size] = drop.size - 1 if drop.size else 0
        keep = drop[pos] != keys if drop.size else np.ones(keys.size, bool)
        base_src, base_dst, base_rank = (
            base_src[keep], base_dst[keep], base_rank[keep],
        )
    src = np.concatenate([base_src, add_src.astype(np.int64)])
    dst = np.concatenate([base_dst, add_dst.astype(np.int64)])
    rank = np.concatenate([base_rank, add_rank.astype(np.int64)])
    return SubgraphComponent(
        component.name, src, dst, rank, component.num_ranks
    )
