"""Configuration of the 1.5D BFS engine.

Every optimization the paper describes can be toggled independently so the
ablation experiments (Fig. 15, §6.4) run on the same engine:

- ``sub_iteration_direction`` — per-component push/pull selection (§4.2);
  off means one whole-iteration direction shared by all six components,
  i.e. vanilla Beamer direction optimization.
- ``segmenting`` — CG-aware core-subgraph segmenting for the EH2EH pull
  kernel (§4.3).
- ``delayed_reduction`` — reduce delegated parent arrays once at the end of
  the run instead of every iteration (§5).
- ``edge_aware_balance`` — GraphIt-style vertex-cut by accumulated degree
  for EH2EH push (§5); off splits the frontier by vertex count and pays
  the resulting CPE imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BFSConfig"]


@dataclass(frozen=True)
class BFSConfig:
    """Engine configuration (defaults reproduce the full paper system)."""

    #: Degree at and above which a vertex is Extremely heavy (E).
    e_threshold: int = 2048
    #: Degree at and above which a vertex is Heavy (H); must not exceed
    #: ``e_threshold``.
    h_threshold: int = 64

    #: §4.2 sub-iteration direction optimization.
    sub_iteration_direction: bool = True
    #: §4.3 CG-aware core subgraph segmenting.
    segmenting: bool = True
    #: §5 delayed reduction of delegated parent arrays.
    delayed_reduction: bool = True
    #: §5 edge-aware vertex-cut load balancing in EH2EH push.
    edge_aware_balance: bool = True

    #: Node-local components (EH2EH, E2L, L2E) switch to pull when the
    #: source class's active fraction exceeds this (§4.2: "only the source
    #: active ratio is used ... for subgraphs with node-local edges").
    local_pull_threshold: float = 0.04
    #: Cross-node components pull when
    #: ``unvisited_dst_ratio < active_src_ratio * cross_pull_bias``.
    #: Push sends one message per *arc* of an active source while pull
    #: sends one per *hit destination*, so pull breaks even well before
    #: the raw ratios cross; the bias approximates the average component
    #: out-degree (tuned like the paper's thresholds, §6.2.1).
    cross_pull_bias: float = 4.0
    #: Beamer alpha for the whole-iteration baseline heuristic.
    whole_iteration_alpha: float = 15.0

    #: Core groups used by the chip kernels.
    num_cgs: int = 6

    #: Safety cap on BFS iterations (a Graph500 R-MAT BFS needs < 20).
    max_iterations: int = 10_000

    def __post_init__(self) -> None:
        if self.e_threshold < 1 or self.h_threshold < 1:
            raise ValueError("degree thresholds must be >= 1")
        if self.e_threshold < self.h_threshold:
            raise ValueError(
                f"e_threshold ({self.e_threshold}) must be >= h_threshold "
                f"({self.h_threshold}): E vertices are the heaviest class"
            )
        if not 0.0 <= self.local_pull_threshold <= 1.0:
            raise ValueError("local_pull_threshold must be in [0, 1]")
        if self.cross_pull_bias <= 0:
            raise ValueError("cross_pull_bias must be positive")
        if self.whole_iteration_alpha <= 0:
            raise ValueError("whole_iteration_alpha must be positive")
        if self.num_cgs < 1:
            raise ValueError("num_cgs must be >= 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
