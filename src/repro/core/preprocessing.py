"""In-place preprocessing: from raw edge list to 1.5D structure (paper §5).

The paper's graph occupies nearly all main memory, so construction cannot
copy: it is expressed as a *generic in-place global sort* — Parallel
Sorting by Regular Sampling across nodes with PARADIS (an in-place radix
sort) locally — that moves every arc to its owning rank in sorted order,
after which the six component structures are built in place.

:func:`preprocess` executes that pipeline on the simulated runtime:

1. raw generator edges start round-robin across ranks (as a distributed
   generator would leave them);
2. degrees are computed locally and combined with a reduce-scatter;
3. vertices are classified E/H/L and each arc is keyed by
   ``(owning rank, destination, source)``;
4. the keyed arcs are globally sorted with :func:`repro.sort.psrs.psrs_sort`
   (radix local sort), whose exchange matrix is charged to the ledger as
   the construction alltoallv;
5. per-rank sorted runs are handed to the component builder.

The resulting :class:`~repro.core.partition.PartitionedGraph` is
identical to :func:`~repro.core.partition.partition_graph`'s (tests
assert it), and the ledger's total is the simulated *kernel 1
(construction)* time that :mod:`repro.graph500.driver` reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionedGraph, partition_graph
from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.network import MachineSpec
from repro.runtime.ledger import TrafficLedger
from repro.runtime.mesh import ProcessMesh
from repro.sort.psrs import psrs_sort
from repro.sort.radix import radix_sort

__all__ = ["PreprocessingReport", "preprocess", "estimate_construction_seconds"]

_ARC_BYTES = 16  # packed (src, dst) on the wire


@dataclass
class PreprocessingReport:
    """Simulated cost account of the construction (kernel 1)."""

    ledger: TrafficLedger
    num_arcs: int
    exchange_bytes: float
    sorted_runs: list[np.ndarray]

    @property
    def construction_seconds(self) -> float:
        return self.ledger.total_seconds


def _arc_sort_keys(part: PartitionedGraph) -> np.ndarray:
    """Global sort keys (rank, dst, src) of every stored arc, packed."""
    n = part.num_vertices
    if part.mesh.num_ranks * n * n >= 2**62:
        raise ValueError(
            "packed sort keys would overflow int64 for this (ranks, n); "
            "use a composite key sort instead"
        )
    keys = []
    for comp in part.components.values():
        if comp.num_arcs == 0:
            continue
        s, d, r = comp.arcs()
        keys.append((r * n + d) * n + s)
    if not keys:
        return np.array([], dtype=np.int64)
    return np.concatenate(keys)


def preprocess(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    mesh: ProcessMesh,
    *,
    e_threshold: int,
    h_threshold: int,
    machine: MachineSpec | None = None,
) -> tuple[PartitionedGraph, PreprocessingReport]:
    """Run the §5 construction pipeline; returns (partition, cost report)."""
    if mesh.num_ranks * num_vertices * num_vertices >= 2**62:
        raise ValueError(
            "packed sort keys would overflow int64 for this (ranks, n); "
            "use a composite key sort instead"
        )
    if machine is None:
        machine = mesh.machine or MachineSpec(num_nodes=mesh.num_ranks)
    rates = NodeKernelRates(chip=machine.chip)
    ledger = TrafficLedger(CostModel(machine))
    ws = machine.work_scale
    p = mesh.num_ranks

    # The functional partition is the ground truth the sort must realize.
    part = partition_graph(
        src, dst, num_vertices, mesh,
        e_threshold=e_threshold, h_threshold=h_threshold,
    )

    # --- degree computation: local bincount + reduce-scatter ------------
    block_bytes = mesh.block_size(num_vertices) * 8.0
    ledger.charge_compute(
        "preprocess",
        "degree_count",
        np.full(p, -(-2 * src.size // p), dtype=np.int64),
        rates.kernel_time(-(-2 * src.size // p), rates.message_rate(), ws),
    )
    ledger.charge_collective(
        "preprocess",
        CollectiveKind.REDUCE_SCATTER,
        p,
        max_bytes_intra=block_bytes * 0.5,
        max_bytes_inter=block_bytes * 0.5,
        total_bytes=block_bytes * p,
    )

    # --- global sort of keyed arcs over simulated rank chunks -----------
    keys = _arc_sort_keys(part)
    chunk_bounds = (np.arange(p + 1, dtype=np.int64) * keys.size) // p
    chunks = [keys[chunk_bounds[i] : chunk_bounds[i + 1]] for i in range(p)]

    exchange_total = {"bytes": 0.0, "max_send": 0.0}

    def on_exchange(matrix: np.ndarray) -> None:
        # PSRS exchange moves 8-byte keys; real construction moves 16-byte
        # packed arcs, so scale the matrix.
        scaled = matrix.astype(np.float64) * (_ARC_BYTES / 8.0)
        np.fill_diagonal(scaled, 0.0)
        exchange_total["bytes"] = float(scaled.sum())
        per_rank = scaled.sum(axis=1)
        intra = np.zeros(p)
        inter = np.zeros(p)
        for i in range(p):
            a, b = mesh.split_intra_inter(i, scaled[i])
            intra[i], inter[i] = a, b
        exchange_total["max_send"] = float(per_rank.max(initial=0.0))
        ledger.charge_collective(
            "preprocess",
            CollectiveKind.ALLTOALLV,
            p,
            max_bytes_intra=float(intra.max(initial=0.0)),
            max_bytes_inter=float(inter.max(initial=0.0)),
            total_bytes=exchange_total["bytes"],
        )

    sorted_runs = psrs_sort(chunks, local_sort=radix_sort, on_exchange=on_exchange)

    # local sort cost: radix passes over the rank's arcs (in-place
    # PARADIS role) — each pass streams the chunk once.
    per_rank_arcs = np.array([c.size for c in sorted_runs], dtype=np.int64)
    max_arcs = int(per_rank_arcs.max()) if per_rank_arcs.size else 0
    sort_passes = 4  # 64-bit keys bounded by rank*n^2, byte digits
    ledger.charge_compute(
        "preprocess",
        "local_radix_sort",
        per_rank_arcs,
        rates.kernel_time(max_arcs * sort_passes, rates.message_rate(), ws),
    )
    # component construction: one more stream over the sorted arcs.
    ledger.charge_compute(
        "preprocess",
        "build_components",
        per_rank_arcs,
        rates.kernel_time(max_arcs, rates.message_rate(), ws),
    )

    report = PreprocessingReport(
        ledger=ledger,
        num_arcs=int(keys.size),
        exchange_bytes=exchange_total["bytes"],
        sorted_runs=sorted_runs,
    )
    return part, report


def estimate_construction_seconds(
    part: PartitionedGraph, machine: MachineSpec
) -> float:
    """Closed-form kernel-1 estimate without executing the sort.

    Mirrors :func:`preprocess`'s accounting in the balanced limit: every
    arc crosses the network once (16 bytes), is radix-sorted locally, and
    streamed once more during construction.
    """
    rates = NodeKernelRates(chip=machine.chip)
    cost = CostModel(machine)
    p = part.mesh.num_ranks
    ws = machine.work_scale
    arcs_per_rank = -(-part.total_arcs // p)
    exchange = cost.collective_time(
        CollectiveKind.ALLTOALLV,
        p,
        max_bytes_per_rank_intra=arcs_per_rank * _ARC_BYTES * 0.5,
        max_bytes_per_rank_inter=arcs_per_rank * _ARC_BYTES * 0.5,
    )
    compute = rates.kernel_time(
        arcs_per_rank * 5, rates.message_rate(), ws
    )
    return exchange + compute
