"""CG-aware core subgraph segmenting (paper §4.3).

The heaviest kernel is the bottom-up EH2EH sub-iteration, whose random
reads touch the activeness bit-vector of the *column's* E and H vertices.
The paper:

- bounds the column E+H population so the bit-vector stays under ~12.5 MB;
- segments the core subgraph by destination into 6 pieces (one per CG),
  ~2 MB of bits each;
- stripes each segment's bit-vector over the 64 CPE LDMs of one CG
  (:class:`repro.machine.ldm.LDMLayout`) and reads it with RMA instead of
  GLD — the 9x kernel speedup of §6.4;
- splits the *source* side into 6 virtual intervals round-robin scheduled
  across the CGs so no two CGs ever write the same sources concurrently.

:class:`SegmentingPlan` validates feasibility for a partition and exposes
the schedule; the engine only applies the segmented pull rate when the
plan is feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import PartitionedGraph
from repro.machine.chip import ChipSpec, SW26010_PRO
from repro.machine.ldm import LDMLayout

__all__ = ["SegmentingPlan", "plan_segmenting"]


@dataclass(frozen=True)
class SegmentingPlan:
    """Feasible segmenting of a column's EH bit-vector across the CGs."""

    #: E+H vertices delegated on the busiest column.
    max_column_eh: int
    #: Number of segments (= core groups).
    num_segments: int
    #: Bits each segment must host.
    segment_bits: int
    #: Whether each segment fits the per-CG LDM budget.
    feasible: bool
    #: Source-interval schedule: ``schedule[step][cg]`` is the virtual
    #: source interval CG ``cg`` processes at ``step`` (round-robin, no two
    #: CGs share an interval at any step).
    schedule: tuple[tuple[int, ...], ...]

    @property
    def segment_bytes(self) -> int:
        return -(-self.segment_bits // 8)


def plan_segmenting(
    part: PartitionedGraph,
    *,
    chip: ChipSpec = SW26010_PRO,
    layout: LDMLayout | None = None,
) -> SegmentingPlan:
    """Build the segmenting plan for a partitioned graph.

    The destination bit-vector of a rank's EH2EH block covers the EH
    vertices of the rank's *column*; the plan divides it into one segment
    per CG and checks each against the CG's LDM capacity.
    """
    if layout is None:
        layout = LDMLayout(num_cpes=chip.cpes_per_cg)
    num_segments = chip.num_core_groups
    max_col = int(part.col_eh_counts.max()) if part.col_eh_counts.size else 0
    segment_bits = -(-max_col // num_segments)
    feasible = layout.fits(segment_bits)

    # Round-robin source-interval schedule: at step s, CG g processes
    # interval (g + s) mod num_segments — a Latin square, so every
    # (step, interval) pair is owned by exactly one CG.
    schedule = tuple(
        tuple((g + s) % num_segments for g in range(num_segments))
        for s in range(num_segments)
    )
    return SegmentingPlan(
        max_column_eh=max_col,
        num_segments=num_segments,
        segment_bits=segment_bits,
        feasible=feasible,
        schedule=schedule,
    )
