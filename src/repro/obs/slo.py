"""Rolling-window SLO burn-rate monitoring over latency histograms.

An :class:`SLOSpec` states an objective over one stage of the serving
latency surface: "``objective`` of requests complete within
``threshold_seconds``" (e.g. 99% of total latencies under 50 ms),
evaluated over a rolling ``window_seconds``.

The :class:`SLOMonitor` reads the cumulative
``serve_latency_seconds{stage=...}`` histograms a
:class:`~repro.serve.service.TraversalService` feeds, snapshots
``(t, observed, good)`` per spec, and evaluates the classic burn rate::

    error_rate = bad_in_window / observed_in_window
    burn_rate  = error_rate / (1 - objective)

A burn rate of 1.0 spends the error budget exactly as fast as the
objective allows; sustained burn above :attr:`SLOSpec.burn_warn` (or
:attr:`SLOSpec.burn_page`) yields ``warn``/``page`` status and a typed
:class:`SLOAlert` record.  Because the source is a bucketed histogram,
the threshold is quantized to the largest bucket bound ``<=
threshold_seconds`` — "good" is counted conservatively (never
overstated), and the quantized value is reported on the spec status.

The monitor holds no locks and writes nothing into the registry; like
the sampler it is a pure reader, safe to run on the serving loop.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import asdict, dataclass

__all__ = [
    "SLOSpec",
    "SLOAlert",
    "SLOMonitor",
    "parse_slo_spec",
    "DEFAULT_SLOS",
]


@dataclass(frozen=True)
class SLOSpec:
    """One latency objective over one ``serve_latency_seconds`` stage."""

    #: Stage label the histogram is selected by (queue|batch|traversal|total).
    stage: str
    #: Latency threshold a "good" request stays under (seconds).
    threshold_seconds: float
    #: Fraction of requests that must be good (e.g. 0.99).
    objective: float
    #: Rolling evaluation window (seconds).
    window_seconds: float = 60.0
    #: Burn rates at which the status degrades.
    burn_warn: float = 1.0
    burn_page: float = 10.0

    def __post_init__(self) -> None:
        if self.threshold_seconds <= 0:
            raise ValueError("threshold_seconds must be > 0")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be > 0")
        if self.burn_page < self.burn_warn:
            raise ValueError("burn_page must be >= burn_warn")

    @property
    def name(self) -> str:
        return (
            f"{self.stage}<{self.threshold_seconds:g}s"
            f"@{100 * self.objective:g}%"
        )


@dataclass
class SLOAlert:
    """A burn-rate threshold crossing, recorded once per transition."""

    slo: str
    severity: str  # "warn" | "page"
    burn_rate: float
    error_rate: float
    window_seconds: float
    at: float
    message: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


def parse_slo_spec(text: str) -> SLOSpec:
    """Parse ``stage:threshold_seconds:objective[:window_seconds]``.

    Example: ``total:0.05:0.99:30`` — 99% of total latencies under 50 ms
    over a 30 s window.  This is the CLI's ``--slo`` format.
    """
    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"SLO spec {text!r} must be stage:threshold:objective[:window]"
        )
    stage = parts[0].strip()
    if not stage:
        raise ValueError(f"SLO spec {text!r} has an empty stage")
    threshold = float(parts[1])
    objective = float(parts[2])
    window = float(parts[3]) if len(parts) == 4 else 60.0
    return SLOSpec(
        stage=stage,
        threshold_seconds=threshold,
        objective=objective,
        window_seconds=window,
    )


#: A serviceable default: 99% of requests resolve within 250 ms.
DEFAULT_SLOS = (
    SLOSpec(stage="total", threshold_seconds=0.25, objective=0.99),
)

#: Retained alert records (oldest evicted).
_MAX_ALERTS = 256


class _SpecState:
    """Snapshot ring and last-known severity of one spec."""

    __slots__ = ("spec", "ring", "severity", "quantized")

    def __init__(self, spec: SLOSpec) -> None:
        self.spec = spec
        #: (t, observed, good) cumulative readings, oldest first.
        self.ring: deque[tuple[float, int, int]] = deque()
        self.severity = "ok"
        self.quantized: float | None = None


class SLOMonitor:
    """Evaluates burn rates over a registry's staged latency histograms."""

    def __init__(
        self,
        registry,
        specs=DEFAULT_SLOS,
        *,
        metric: str = "serve_latency_seconds",
        match: dict | None = None,
        clock=time.monotonic,
    ) -> None:
        specs = tuple(specs)
        if not specs:
            raise ValueError("at least one SLOSpec is required")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO specs: {names}")
        self.registry = registry
        self.metric = metric
        #: Extra label constraints every selected histogram must carry
        #: (e.g. ``{"tenant": "t0"}`` narrows a tenant-labeled latency
        #: family to one tenant's series); the ``stage`` label from the
        #: spec is always applied on top.
        self.match = dict(match or {})
        self._clock = clock
        self._states = [_SpecState(s) for s in specs]
        self.alerts: list[SLOAlert] = []

    @property
    def specs(self) -> tuple[SLOSpec, ...]:
        return tuple(st.spec for st in self._states)

    # ------------------------------------------------------------------
    # reading the histograms
    # ------------------------------------------------------------------

    def _read(self, spec: SLOSpec, state: _SpecState) -> tuple[int, int]:
        """Cumulative (observed, good) for one spec's stage histogram."""
        observed = 0
        good = 0
        for labels, hist in self.registry.samples(self.metric):
            if labels.get("stage") != spec.stage:
                continue
            if any(labels.get(k) != v for k, v in self.match.items()):
                continue
            observed += int(hist.count)
            bounds = getattr(hist, "bounds", ())
            # Largest bucket bound <= threshold: counting good at the
            # quantized bound never overstates it.
            idx = -1
            for i, b in enumerate(bounds):
                if b <= spec.threshold_seconds:
                    idx = i
                else:
                    break
            if idx >= 0:
                state.quantized = float(bounds[idx])
                good += int(hist.bucket_counts[: idx + 1].sum())
            else:
                state.quantized = 0.0
        return observed, good

    def observe(self) -> None:
        """Snapshot every spec's cumulative counts (call on a cadence)."""
        now = self._clock()
        for state in self._states:
            observed, good = self._read(state.spec, state)
            ring = state.ring
            ring.append((now, observed, good))
            horizon = now - 2 * state.spec.window_seconds
            while len(ring) > 2 and ring[1][0] <= horizon:
                ring.popleft()

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _window_delta(self, state: _SpecState, now: float) -> tuple[int, int]:
        """(observed, bad) accumulated within the rolling window."""
        ring = state.ring
        if not ring:
            return 0, 0
        start = now - state.spec.window_seconds
        base = ring[0]
        for snap in ring:
            if snap[0] <= start:
                base = snap
            else:
                break
        latest = ring[-1]
        observed = latest[1] - base[1]
        good = latest[2] - base[2]
        return max(observed, 0), max(observed - good, 0)

    def evaluate(self) -> dict:
        """Evaluate every spec now; returns the status document.

        Takes a fresh snapshot first, so a bare ``evaluate()`` loop is a
        complete monitor.  Severity transitions append to
        :attr:`alerts` (bounded) once per crossing, not per evaluation.
        """
        self.observe()
        now = self._clock()
        slos = []
        worst = "ok"
        rank = {"ok": 0, "warn": 1, "page": 2}
        for state in self._states:
            spec = state.spec
            observed, bad = self._window_delta(state, now)
            error_rate = bad / observed if observed else 0.0
            burn = error_rate / (1.0 - spec.objective)
            severity = "ok"
            if burn >= spec.burn_page:
                severity = "page"
            elif burn >= spec.burn_warn:
                severity = "warn"
            if rank[severity] > rank[state.severity]:
                self._fire(spec, severity, burn, error_rate, now)
            state.severity = severity
            if rank[severity] > rank[worst]:
                worst = severity
            slos.append(
                {
                    "name": spec.name,
                    "stage": spec.stage,
                    "threshold_seconds": spec.threshold_seconds,
                    "quantized_threshold_seconds": state.quantized,
                    "objective": spec.objective,
                    "window_seconds": spec.window_seconds,
                    "observed": observed,
                    "bad": bad,
                    "error_rate": error_rate,
                    "burn_rate": burn,
                    "status": severity,
                }
            )
        return {
            "status": worst,
            "slos": slos,
            "alerts": [a.to_dict() for a in self.alerts],
        }

    def _fire(
        self, spec: SLOSpec, severity: str, burn: float,
        error_rate: float, now: float,
    ) -> None:
        self.alerts.append(
            SLOAlert(
                slo=spec.name,
                severity=severity,
                burn_rate=burn,
                error_rate=error_rate,
                window_seconds=spec.window_seconds,
                at=now,
                message=(
                    f"{spec.name}: burn rate {burn:.2f} "
                    f"(error rate {100 * error_rate:.2f}% over "
                    f"{spec.window_seconds:g}s window)"
                ),
            )
        )
        del self.alerts[:-_MAX_ALERTS]
