"""Live telemetry sampling: a ring buffer of registry snapshots.

A :class:`TelemetrySampler` periodically reduces a
:class:`~repro.obs.metrics.MetricsRegistry` to one flat snapshot —
per-family counter totals, gauge values, histogram count/sum — plus a
small set of *derived* serving signals (queue depth, batch occupancy,
cache hit rate, per-worker utilization since the previous sample) and
keeps the last ``capacity`` snapshots in a deque.  This is the substrate
the ROADMAP's "online self-tuning from the metrics feedback loop" item
needs: a mid-run time-series instead of a single end-of-run export.

Sampling is read-only and lock-free: registries are only ever mutated by
monotone increments from the serving loop, so a snapshot taken mid-update
is a consistent *recent* state, never a corrupt one.  The sampler never
touches :data:`~repro.obs.metrics.NULL_METRICS`-fed paths — with metrics
disabled there is nothing to sample and no sampler is constructed.

Use :meth:`TelemetrySampler.sample` directly from tests or synchronous
code, or :meth:`start`/:meth:`stop` to run the cadence on an asyncio
loop next to a :class:`~repro.serve.service.TraversalService`.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque

__all__ = ["TelemetrySampler", "DEFAULT_SAMPLE_INTERVAL"]

#: Default sampling cadence (seconds) — coarse enough to be free next to
#: millisecond-scale serving, fine enough to catch queue buildups.
DEFAULT_SAMPLE_INTERVAL = 0.25


class TelemetrySampler:
    """Snapshots a metrics registry into a bounded ring at a cadence."""

    def __init__(
        self,
        registry,
        *,
        capacity: int = 512,
        interval: float = DEFAULT_SAMPLE_INTERVAL,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.registry = registry
        self.capacity = int(capacity)
        self.interval = float(interval)
        self._clock = clock
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self._seq = 0
        #: (t, {worker: busy_seconds}) of the previous sample, for
        #: utilization deltas.
        self._prev_busy: tuple[float, dict] | None = None
        self._task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # snapshotting
    # ------------------------------------------------------------------

    def sample(self) -> dict:
        """Take one snapshot, append it to the ring, and return it."""
        now = self._clock()
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        reg = self.registry
        for name, kind in reg.families().items():
            insts = [inst for _, inst in reg.samples(name)]
            if kind == "counter":
                counters[name] = float(sum(i.value for i in insts))
            elif kind == "gauge":
                gauges[name] = float(sum(i.value for i in insts))
            elif kind == "histogram":
                histograms[name] = {
                    "count": int(sum(i.count for i in insts)),
                    "sum": float(sum(i.sum for i in insts)),
                }
        snap = {
            "t": now,
            "seq": self._seq,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "derived": self._derive(now, gauges, histograms),
        }
        self._seq += 1
        self._ring.append(snap)
        return snap

    def _derive(self, now: float, gauges: dict, histograms: dict) -> dict:
        reg = self.registry
        cached = reg.counter_total("serve_requests", outcome="cached")
        completed = reg.counter_total("serve_requests", outcome="completed")
        served = cached + completed
        batch = histograms.get("serve_batch_size", {"count": 0, "sum": 0.0})
        busy = {
            labels.get("worker", "?"): float(inst.value)
            for labels, inst in reg.samples("worker_busy_seconds")
        }
        utilization: dict[str, float] = {}
        if self._prev_busy is not None:
            prev_t, prev = self._prev_busy
            dt = now - prev_t
            if dt > 0:
                utilization = {
                    wid: max(0.0, (b - prev.get(wid, 0.0)) / dt)
                    for wid, b in sorted(busy.items())
                }
        self._prev_busy = (now, busy)
        return {
            "queue_depth": gauges.get("serve_queue_depth", 0.0),
            "cache_hit_rate": cached / served if served else 0.0,
            "batch_occupancy": (
                batch["sum"] / batch["count"] if batch["count"] else 0.0
            ),
            "worker_utilization": utilization,
            "worker_utilization_mean": (
                sum(utilization.values()) / len(utilization)
                if utilization
                else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # ring access
    # ------------------------------------------------------------------

    @property
    def samples(self) -> list[dict]:
        """The retained snapshots, oldest first."""
        return list(self._ring)

    @property
    def latest(self) -> dict | None:
        return self._ring[-1] if self._ring else None

    @property
    def taken(self) -> int:
        """Snapshots ever taken (``>= len(samples)`` once the ring wraps)."""
        return self._seq

    def to_dict(self) -> dict:
        return {
            "interval_seconds": self.interval,
            "capacity": self.capacity,
            "taken": self._seq,
            "samples": self.samples,
        }

    # ------------------------------------------------------------------
    # asyncio cadence
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("sampler already started")
        self._task = asyncio.create_task(self._loop())

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    async def _loop(self) -> None:
        while True:
            self.sample()
            await asyncio.sleep(self.interval)
