"""Span-based tracer for the simulated runtime.

A :class:`Tracer` records a tree of :class:`Span` objects, each carrying
two clocks:

- **simulated time** — the modeled seconds of the machine, advanced only
  by :meth:`Tracer.charge` (the ledger calls it once per priced kernel or
  collective).  This is the clock the paper's evaluation figures run on:
  the per-subgraph breakdown of Fig. 10 and the per-communication-type
  breakdown of Fig. 11 are span aggregations over it.
- **wall-clock time** — the host's ``perf_counter``, for profiling the
  simulator itself.

Spans nest through an explicit stack: ``with tracer.span(...)`` opens a
child of the innermost open span, and every :meth:`Tracer.charge` leaf
lands under it.  Because the simulated clock only moves forward while a
span is open, simulated timestamps nest monotonically — parents always
contain their children — which is what lets the Chrome ``trace_event``
exporter (:mod:`repro.obs.export`) lay the run out on a single track.

Counters (``bytes``, ``messages``, ``edges``, ...) attach to exactly one
span each, so summing a counter over all spans never double-counts: a
traced BFS run's ``bytes`` total equals the
:class:`~repro.runtime.ledger.TrafficLedger`'s ``total_bytes`` exactly.
Subtree (inclusive) totals are an exporter concern.

The default everywhere is the :data:`NULL_TRACER` singleton, whose every
method is a no-op: an untraced run allocates no spans and follows the
exact same code paths, so results are bit-identical with tracing off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One traced region: a node in the span tree.

    ``attrs`` are descriptive labels (direction, iteration index, root);
    ``counters`` are summable quantities (bytes, messages, edges, items).
    """

    sid: int
    parent: int | None
    name: str
    category: str
    depth: int
    sim_start: float
    wall_start: float
    sim_end: float | None = None
    wall_end: float | None = None
    attrs: dict = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.sim_end is not None

    @property
    def sim_seconds(self) -> float:
        """Inclusive simulated duration (0.0 while still open)."""
        return (self.sim_end - self.sim_start) if self.closed else 0.0

    @property
    def wall_seconds(self) -> float:
        return (self.wall_end - self.wall_start) if self.wall_end is not None else 0.0

    def add_counter(self, key: str, value: float) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + float(value)


class Tracer:
    """Records nested spans against the simulated and wall clocks."""

    enabled = True

    def __init__(self, *, wall_clock: Callable[[], float] = time.perf_counter):
        self._wall = wall_clock
        self._sim_now = 0.0
        self._stack: list[Span] = []
        #: All spans in open order; closed in place.
        self.spans: list[Span] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    @property
    def sim_now(self) -> float:
        """Current simulated time (sum of all charges so far)."""
        return self._sim_now

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` at top level."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, category: str = "span", **attrs) -> Iterator[Span]:
        """Open a nested span; closes (stamping both clocks) on exit.

        Keep ``name`` stable across repetitions (e.g. ``"iteration"``,
        not ``"iteration 3"``) and put the varying part in ``attrs`` —
        aggregating exporters group by the name path.
        """
        parent = self._stack[-1].sid if self._stack else None
        sp = Span(
            sid=len(self.spans),
            parent=parent,
            name=name,
            category=category,
            depth=len(self._stack),
            sim_start=self._sim_now,
            wall_start=self._wall(),
            attrs=dict(attrs),
        )
        self.spans.append(sp)
        self._stack.append(sp)
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.sim_end = self._sim_now
            sp.wall_end = self._wall()

    def charge(
        self,
        name: str,
        *,
        category: str = "charge",
        sim_seconds: float = 0.0,
        counters: dict[str, float] | None = None,
        **attrs,
    ) -> Span:
        """Record a leaf span and advance the simulated clock by
        ``sim_seconds``.

        This is the only way simulated time moves; the ledger calls it
        once per priced event, so the simulated timeline is exactly the
        sequence of charges.
        """
        if sim_seconds < 0:
            raise ValueError("sim_seconds must be nonnegative")
        wall = self._wall()
        start = self._sim_now
        self._sim_now = start + sim_seconds
        sp = Span(
            sid=len(self.spans),
            parent=self._stack[-1].sid if self._stack else None,
            name=name,
            category=category,
            depth=len(self._stack),
            sim_start=start,
            wall_start=wall,
            sim_end=self._sim_now,
            wall_end=wall,
            attrs=dict(attrs),
            counters={k: float(v) for k, v in (counters or {}).items()},
        )
        self.spans.append(sp)
        return sp

    def add_counter(self, key: str, value: float) -> None:
        """Add to the innermost open span (dropped when none is open)."""
        if self._stack:
            self._stack[-1].add_counter(key, value)

    def record_external(
        self,
        name: str,
        *,
        category: str = "worker",
        wall_start: float,
        wall_end: float,
        counters: dict[str, float] | None = None,
        **attrs,
    ) -> Span:
        """Record a closed span whose wall clock was measured elsewhere.

        Worker processes time their own chunk bodies with
        ``perf_counter`` (comparable across processes on one host) and
        ship the stamps back; the parent replays them here.  The span
        nests under the innermost open span but never advances the
        simulated clock — external work is real time, not modeled time.
        """
        if wall_end < wall_start:
            raise ValueError("wall_end must not precede wall_start")
        sp = Span(
            sid=len(self.spans),
            parent=self._stack[-1].sid if self._stack else None,
            name=name,
            category=category,
            depth=len(self._stack),
            sim_start=self._sim_now,
            wall_start=float(wall_start),
            sim_end=self._sim_now,
            wall_end=float(wall_end),
            attrs=dict(attrs),
            counters={k: float(v) for k, v in (counters or {}).items()},
        )
        self.spans.append(sp)
        return sp

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def counter_total(self, key: str) -> float:
        """Sum one counter over all spans (each value recorded once)."""
        return float(sum(sp.counters.get(key, 0.0) for sp in self.spans))

    def children_of(self, span: Span) -> list[Span]:
        return [sp for sp in self.spans if sp.parent == span.sid]

    def roots(self) -> list[Span]:
        return [sp for sp in self.spans if sp.parent is None]

    def find(self, *, category: str | None = None, name: str | None = None) -> list[Span]:
        """Spans matching a category and/or name, in open order."""
        return [
            sp
            for sp in self.spans
            if (category is None or sp.category == category)
            and (name is None or sp.name == name)
        ]


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


class _NullSpan:
    """Inert span: attribute/counter writes vanish."""

    __slots__ = ()

    sid = -1
    parent = None
    name = ""
    category = "null"
    depth = 0
    sim_start = 0.0
    sim_end = 0.0
    wall_start = 0.0
    wall_end = 0.0
    closed = True
    sim_seconds = 0.0
    wall_seconds = 0.0

    @property
    def attrs(self) -> dict:
        return {}

    @property
    def counters(self) -> dict:
        return {}

    def add_counter(self, key: str, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_CTX = _NullSpanContext()


class NullTracer:
    """Zero-overhead tracer: every method is a no-op.

    The default for every traced component, so untraced runs take the
    same code paths with no span allocation and produce bit-identical
    results.
    """

    enabled = False
    spans: tuple = ()
    sim_now = 0.0
    current = None

    def span(self, name: str, category: str = "span", **attrs) -> _NullSpanContext:
        return _NULL_CTX

    def charge(self, name: str, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def record_external(self, name: str, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def add_counter(self, key: str, value: float) -> None:
        pass

    def counter_total(self, key: str) -> float:
        return 0.0

    def children_of(self, span) -> list:
        return []

    def roots(self) -> list:
        return []

    def find(self, **kwargs) -> list:
        return []


#: Shared inert tracer used as the default everywhere.
NULL_TRACER = NullTracer()
