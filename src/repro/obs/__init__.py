"""repro.obs — structured tracing and profiling for the simulated system.

The observability layer the paper's evaluation implies but never names:
every per-component timing in Fig. 10 and every per-collective byte count
in Fig. 11 presupposes a way to attribute simulated time and traffic to
the sub-iteration that spent it.  :class:`~repro.obs.tracer.Tracer` is
that attribution: a tree of spans over two clocks (simulated seconds from
the :class:`~repro.runtime.ledger.TrafficLedger`'s charges, wall seconds
from the host), with per-span counters for bytes, messages, and edges.

- :mod:`repro.obs.tracer` — ``Tracer`` / ``Span`` / zero-overhead
  ``NullTracer`` (the default everywhere).
- :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto), flame-style text summary, CSV of
  span aggregates.
- :mod:`repro.obs.metrics` — the aggregate side: a ``MetricsRegistry``
  of labeled counters, gauges, exponential-bucket histograms, and
  per-rank vectors fed automatically from the ledger, communicator, and
  scheduler choke points; Prometheus text and JSON exporters.
- :mod:`repro.obs.report` — the ``RunReport`` artifact (schema-versioned
  JSON with a config fingerprint) and the ``compare_reports``
  perf-regression gate behind ``python -m repro compare``.
- :mod:`repro.obs.timeline` — the live plane's ring-buffer sampler:
  periodic registry snapshots (queue depth, batch occupancy, cache hit
  rate, worker utilization) for mid-run time-series.
- :mod:`repro.obs.slo` — rolling-window burn-rate monitoring of the
  staged serving-latency histograms, with typed alert records.

Produce a trace by passing ``tracer=Tracer()`` to
:class:`~repro.core.engine.DistributedBFS`,
:func:`~repro.graph500.driver.run_graph500`, or
:func:`~repro.sort.ocs.simulate_ocs_rma` — or ``--trace out.json`` on the
CLI's ``bfs`` and ``graph500`` subcommands.  See ``docs/observability.md``
for a worked example.
"""

from repro.obs.export import (
    build_track_table,
    render_flame,
    span_aggregates,
    to_chrome_trace,
    write_chrome_trace,
    write_span_csv,
)
from repro.obs.metrics import (
    NULL_METRICS,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    NullMetricsRegistry,
    registry_to_json,
    to_prometheus_text,
)
from repro.obs.slo import SLOAlert, SLOMonitor, SLOSpec, parse_slo_spec
from repro.obs.timeline import TelemetrySampler
from repro.obs.report import (
    RunReport,
    bfs_smoke_report,
    compare_reports,
    report_from_bfs,
    report_from_graph500,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "to_prometheus_text",
    "registry_to_json",
    "RunReport",
    "report_from_bfs",
    "report_from_graph500",
    "bfs_smoke_report",
    "compare_reports",
    "to_chrome_trace",
    "write_chrome_trace",
    "build_track_table",
    "render_flame",
    "span_aggregates",
    "write_span_csv",
    "PROMETHEUS_CONTENT_TYPE",
    "TelemetrySampler",
    "SLOSpec",
    "SLOAlert",
    "SLOMonitor",
    "parse_slo_spec",
]
