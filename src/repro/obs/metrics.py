"""Aggregated metrics: labeled counters, gauges, and histograms.

Where the :class:`~repro.obs.tracer.Tracer` records *every* event as a
span, the :class:`MetricsRegistry` keeps *aggregates*: monotonically
increasing counters, point-in-time gauges, fixed-exponential-bucket
histograms, and per-rank accumulation vectors, each labeled by
dimensions like ``component``/``direction``/``kind``/``phase``.  This is
the surface the paper's evaluation tables are cut from — time share by
subgraph (Fig. 10) is ``comm_seconds`` + ``compute_seconds`` summed over
the ``phase`` label, time share by communication type (Fig. 11) is the
same counters cut by ``kind``, and the per-CG load balance of Fig. 13 is
the ``rank_items``/``rank_bytes`` per-rank vectors.

The registry is fed automatically from the runtime's three choke points
(the :class:`~repro.runtime.ledger.TrafficLedger` charge methods, the
:class:`~repro.runtime.comm.SimCommunicator` per-rank byte vectors, and
the :class:`~repro.core.kernels.scheduler.LevelSyncScheduler`
sub-iteration loop), so every engine emits the same metric families with
zero per-engine code.  See ``docs/observability.md`` for the family
table.

The default everywhere is :data:`NULL_METRICS`, a no-op registry: an
uninstrumented run allocates nothing and stays bit-identical.

Exporters: :func:`to_prometheus_text` (Prometheus text exposition
format) and :func:`registry_to_json` (schema-versioned JSON).
"""

from __future__ import annotations

import math
from bisect import bisect_left

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "RankVector",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "exponential_buckets",
    "to_prometheus_text",
    "registry_to_json",
]

#: Version tag of the JSON metrics export.
METRICS_SCHEMA = "repro.metrics/1"

#: HTTP Content-Type of the text exposition format (what a Prometheus
#: scraper expects from a ``/metrics`` endpoint).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def exponential_buckets(
    start: float = 1.0, factor: float = 2.0, count: int = 40
) -> tuple[float, ...]:
    """Upper bounds ``start * factor**i`` for ``i in range(count)``.

    The implicit final bucket is ``+Inf`` (the Prometheus convention),
    so every observation lands somewhere.
    """
    if start <= 0:
        raise ValueError("bucket start must be positive")
    if factor <= 1.0:
        raise ValueError("bucket growth factor must exceed 1")
    if count < 1:
        raise ValueError("need at least one bucket")
    return tuple(start * factor**i for i in range(count))


#: Default bucket ladder: 1 .. 2**39 (~5.5e11), wide enough for byte and
#: item volumes at any simulated scale.
DEFAULT_BUCKETS = exponential_buckets(1.0, 2.0, 40)


class Counter:
    """Monotonically increasing sum."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += float(amount)


class Gauge:
    """Point-in-time value (last write wins)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-exponential-bucket histogram with exact sum/min/max.

    Bucket ``i`` counts observations ``<= bounds[i]``; the final
    (implicit ``+Inf``) bucket catches overflow.  Percentiles are
    estimated as the upper bound of the bucket containing the requested
    rank — an upper bound on the true percentile, stable across runs.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bucket_counts = np.zeros(len(self.bounds) + 1, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        # Scalar fast path: bisect on the bounds tuple is ~20x cheaper
        # than routing one value through the vectorized numpy path, and
        # single observations are the telemetry hot path (one per
        # dispatch / request stage).
        v = float(value)
        self.bucket_counts[bisect_left(self.bounds, v)] += 1
        self.count += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    def observe_many(self, values: np.ndarray) -> None:
        """Vectorized observation of a whole array (e.g. a per-rank
        work vector)."""
        v = np.asarray(values, dtype=np.float64).ravel()
        if v.size == 0:
            return
        idx = np.searchsorted(self.bounds, v, side="left")
        self.bucket_counts += np.bincount(idx, minlength=self.bucket_counts.size)
        self.count += int(v.size)
        self.sum += float(v.sum())
        self.min = min(self.min, float(v.min()))
        self.max = max(self.max, float(v.max()))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile rank
        (``q`` in [0, 1]); exact ``max`` for the last bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = np.cumsum(self.bucket_counts)
        i = int(np.searchsorted(cum, rank, side="left"))
        if i >= len(self.bounds):
            return self.max
        return min(self.bounds[i], self.max)

    def summary(self) -> dict:
        """The stable scalar digest RunReports embed."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }


class RankVector:
    """Per-rank accumulation vector (elementwise sum of added vectors).

    Keeps the exact per-rank totals — rank identity intact — so load
    balance (Fig. 13's max-min spread, max/avg) is computed from true
    totals rather than from lossy buckets.  :meth:`to_histogram` folds
    the totals into an exponential-bucket histogram when only the
    distribution shape is needed.
    """

    __slots__ = ("values",)
    kind = "vector"

    def __init__(self) -> None:
        self.values = np.zeros(0, dtype=np.float64)

    def add(self, values: np.ndarray) -> None:
        v = np.asarray(values, dtype=np.float64).ravel()
        if v.size > self.values.size:
            grown = np.zeros(v.size, dtype=np.float64)
            grown[: self.values.size] = self.values
            self.values = grown
        self.values[: v.size] += v

    def to_histogram(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        hist = Histogram(bounds)
        hist.observe_many(self.values)
        return hist

    def summary(self) -> dict:
        """Exact balance digest over the accumulated per-rank totals."""
        v = self.values
        if v.size == 0 or v.sum() == 0:
            return {"ranks": int(v.size), "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "spread": 0.0,
                    "max_over_avg": 0.0}
        mean = float(v.mean())
        return {
            "ranks": int(v.size),
            "sum": float(v.sum()),
            "min": float(v.min()),
            "max": float(v.max()),
            "mean": mean,
            "p50": float(np.percentile(v, 50)),
            "p95": float(np.percentile(v, 95)),
            #: Fig. 13's (max - min) / avg.
            "spread": float((v.max() - v.min()) / mean),
            #: Fig. 13's max / avg - 1.
            "max_over_avg": float(v.max() / mean - 1.0),
        }


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Family:
    """All samples of one metric name (shared type across label sets)."""

    __slots__ = ("name", "kind", "samples")

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        #: label key tuple -> instrument
        self.samples: dict[tuple, object] = {}


class MetricsRegistry:
    """Labeled metric families, fed by the runtime's choke points.

    ``counter``/``gauge``/``histogram``/``vector`` get-or-create one
    instrument per (name, labels) pair; a name is bound to one
    instrument type on first use and mixing types raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # instrument accessors
    # ------------------------------------------------------------------

    def _get(self, name: str, kind: str, factory, labels: dict) -> object:
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = _Family(name, kind)
        elif fam.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {fam.kind}, not a {kind}"
            )
        key = _label_key(labels)
        inst = fam.samples.get(key)
        if inst is None:
            inst = fam.samples[key] = factory()
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, "counter", Counter, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, "gauge", Gauge, labels)

    def histogram(
        self, name: str, *, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get(name, "histogram", lambda: Histogram(buckets), labels)

    def vector(self, name: str, **labels) -> RankVector:
        return self._get(name, "vector", RankVector, labels)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def families(self) -> dict[str, str]:
        """name -> instrument kind, for every family seen."""
        return {name: fam.kind for name, fam in sorted(self._families.items())}

    def samples(self, name: str) -> list[tuple[dict[str, str], object]]:
        """(labels, instrument) pairs of one family (empty if unseen)."""
        fam = self._families.get(name)
        if fam is None:
            return []
        return [(dict(key), inst) for key, inst in sorted(fam.samples.items())]

    def counter_total(self, name: str, **label_filter) -> float:
        """Sum a counter family over samples matching the filter."""
        total = 0.0
        for labels, inst in self.samples(name):
            if all(labels.get(k) == str(v) for k, v in label_filter.items()):
                total += inst.value
        return total

    def labels_of(self, name: str, label: str) -> set[str]:
        """Distinct values one label takes within a family."""
        return {
            labels[label]
            for labels, _ in self.samples(name)
            if label in labels
        }


class _NullInstrument:
    """Inert counter/gauge/histogram/vector: every write vanishes."""

    __slots__ = ()

    value = 0.0
    count = 0
    sum = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0
    values = np.zeros(0)
    bounds = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def add(self, values) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Zero-overhead registry: all instruments are shared no-ops.

    The default for every instrumented component, so unmetered runs take
    the same code paths, allocate nothing, and produce bit-identical
    results (pinned by test).
    """

    enabled = False

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **kwargs) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def vector(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def families(self) -> dict:
        return {}

    def samples(self, name: str) -> list:
        return []

    def counter_total(self, name: str, **label_filter) -> float:
        return 0.0

    def labels_of(self, name: str, label: str) -> set:
        return set()


#: Shared inert registry used as the default everywhere.
NULL_METRICS = NullMetricsRegistry()


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------


def _fmt_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape_label_value(value: str) -> str:
    """Label-value escaping per the exposition format: backslash,
    double quote, and line feed."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def to_prometheus_text(registry: MetricsRegistry, *, prefix: str = "repro_") -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters get the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``;
    per-rank vectors emit one gauge sample per rank under a ``rank``
    label.  Ends with the format-required trailing newline.
    """
    lines: list[str] = []
    for name, kind in registry.families().items():
        metric = prefix + name
        if kind == "counter":
            metric += "_total"
        prom_type = {"counter": "counter", "gauge": "gauge",
                     "histogram": "histogram", "vector": "gauge"}[kind]
        lines.append(f"# TYPE {metric} {prom_type}")
        for labels, inst in registry.samples(name):
            if kind in ("counter", "gauge"):
                lines.append(f"{metric}{_fmt_labels(labels)} {_fmt_value(inst.value)}")
            elif kind == "histogram":
                cum = 0
                for bound, n in zip(inst.bounds, inst.bucket_counts):
                    cum += int(n)
                    le = _fmt_labels(labels, {"le": _fmt_value(bound)})
                    lines.append(f"{metric}_bucket{le} {cum}")
                le = _fmt_labels(labels, {"le": "+Inf"})
                lines.append(f"{metric}_bucket{le} {inst.count}")
                lines.append(f"{metric}_sum{_fmt_labels(labels)} {_fmt_value(inst.sum)}")
                lines.append(f"{metric}_count{_fmt_labels(labels)} {inst.count}")
            else:  # vector -> per-rank gauge samples
                for rank, v in enumerate(inst.values):
                    lab = _fmt_labels(labels, {"rank": str(rank)})
                    lines.append(f"{metric}{lab} {_fmt_value(float(v))}")
    return "\n".join(lines) + "\n"


def registry_to_json(registry: MetricsRegistry) -> dict:
    """Schema-versioned JSON document of every family and sample."""
    families = {}
    for name, kind in registry.families().items():
        samples = []
        for labels, inst in registry.samples(name):
            if kind in ("counter", "gauge"):
                samples.append({"labels": labels, "value": inst.value})
            elif kind == "histogram":
                samples.append({
                    "labels": labels,
                    **inst.summary(),
                    "buckets": [
                        [b, int(n)]
                        for b, n in zip(inst.bounds, inst.bucket_counts)
                        if n
                    ],
                    "overflow": int(inst.bucket_counts[-1]),
                })
            else:  # vector
                samples.append({
                    "labels": labels,
                    **inst.summary(),
                    "values": [float(v) for v in inst.values],
                })
        families[name] = {"type": kind, "samples": samples}
    return {"schema": METRICS_SCHEMA, "families": families}
