"""Trace exporters: Chrome ``trace_event`` JSON, flame text, span CSV.

Three views of one :class:`~repro.obs.tracer.Tracer`:

- :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format (the "JSON Array with metadata" variant),
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev.  Spans
  become complete (``"ph": "X"``) events; by default timestamps are the
  *simulated* clock, so the rendered timeline is the modeled machine's —
  the per-iteration structure behind the paper's Fig. 10/11 breakdowns —
  not the simulator's own wall time (pass ``clock="wall"`` for that).
- :func:`render_flame` — a flame-graph-style text summary aggregated by
  span name path, inclusive simulated seconds, counts, and counters.
- :func:`span_aggregates` / :func:`write_span_csv` — a flat table of
  per-path aggregates for spreadsheet analysis.

All exporters skip still-open spans (a trace is normally exported after
the traced run returns, when every span is closed).
"""

from __future__ import annotations

import csv
import json
import os
from collections import defaultdict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.tracer import Span, Tracer

__all__ = [
    "build_track_table",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_flame",
    "span_aggregates",
    "write_span_csv",
]


def _closed_spans(tracer: "Tracer") -> list["Span"]:
    return [sp for sp in tracer.spans if sp.closed]


def _span_path(tracer: "Tracer") -> dict[int, str]:
    """sid -> '/'-joined name path from the root (names, not indices)."""
    by_sid = {sp.sid: sp for sp in tracer.spans}
    paths: dict[int, str] = {}
    for sp in tracer.spans:
        if sp.parent is None or sp.parent not in paths:
            paths[sp.sid] = sp.name
        else:
            paths[sp.sid] = f"{paths[sp.parent]}/{sp.name}"
    del by_sid
    return paths


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------


#: Track groups (Chrome ``pid``) in fixed order: the main process, one
#: lane per mesh rank, one lane per backend worker, one lane per served
#: request.  A span lands in the most specific group its attrs name.
_TRACK_GROUPS = ("main", "rank", "worker", "request")
_TRACK_ATTRS = {"rank": "rank", "worker": "worker", "request": "trace_id"}


def _track_key(span: "Span") -> tuple[str, object]:
    """(group, lane value) a span renders on, from its attrs."""
    attrs = span.attrs
    if "worker" in attrs:
        return ("worker", attrs["worker"])
    if "rank" in attrs:
        return ("rank", attrs["rank"])
    if "trace_id" in attrs:
        return ("request", attrs["trace_id"])
    return ("main", 0)


def _lane_sort_key(value) -> tuple:
    """Numeric lanes in numeric order, everything else lexicographic."""
    try:
        return (0, float(value), "")
    except (TypeError, ValueError):
        return (1, 0.0, str(value))


def build_track_table(spans) -> dict[tuple[str, object], tuple[int, int]]:
    """Deterministic (group, lane) -> (pid, tid) assignment.

    The table depends only on the *set* of tracks present — lanes are
    sorted within their group — so the same run always renders on the
    same tracks regardless of completion order.
    """
    lanes: dict[str, set] = {g: set() for g in _TRACK_GROUPS}
    for sp in spans:
        group, lane = _track_key(sp)
        lanes[group].add(lane)
    table: dict[tuple[str, object], tuple[int, int]] = {}
    for pid, group in enumerate(_TRACK_GROUPS):
        for tid, lane in enumerate(sorted(lanes[group], key=_lane_sort_key)):
            table[(group, lane)] = (pid, tid)
    return table


def _track_metadata_events(table) -> list[dict]:
    """Chrome ``M``-phase events naming every pid/tid the table uses."""
    events = []
    named_pids = set()
    for (group, lane), (pid, tid) in sorted(
        table.items(), key=lambda kv: kv[1]
    ):
        if pid not in named_pids:
            named_pids.add(pid)
            label = "repro" if group == "main" else f"{group}s"
            events.append(
                {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                 "args": {"name": label}}
            )
        label = "main" if group == "main" else f"{group} {lane}"
        events.append(
            {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
             "args": {"name": label}}
        )
    return events


def to_chrome_trace(tracer: "Tracer", *, clock: str = "sim") -> dict:
    """Render the span tree as a Chrome ``trace_event`` document.

    ``clock="sim"`` (default) places events on the simulated timeline;
    ``clock="wall"`` uses host wall time relative to the first span.
    Timestamps are microseconds, as the format requires.  Every event
    carries its attrs and counters in ``args`` (plus the other clock's
    duration), so nothing recorded is lost in export.

    Tracks: spans tagged with a ``worker``/``rank``/``trace_id`` attr
    render on their own lane (one Chrome thread per worker, rank, or
    request) via :func:`build_track_table`, so concurrent work shows
    side by side instead of stacked on one row.  Untagged spans stay on
    the main track.
    """
    if clock not in ("sim", "wall"):
        raise ValueError(f"clock must be 'sim' or 'wall', got {clock!r}")
    spans = _closed_spans(tracer)
    table = build_track_table(spans)
    events = _track_metadata_events(table)
    wall0 = min((sp.wall_start for sp in spans), default=0.0)
    for sp in spans:
        if clock == "sim":
            ts, dur = sp.sim_start * 1e6, sp.sim_seconds * 1e6
            other = {"wall_us": round(sp.wall_seconds * 1e6, 3)}
        else:
            ts = (sp.wall_start - wall0) * 1e6
            dur = sp.wall_seconds * 1e6
            other = {"sim_us": round(sp.sim_seconds * 1e6, 6)}
        args = {**sp.attrs, **sp.counters, **other}
        pid, tid = table[_track_key(sp)]
        events.append(
            {
                "name": sp.name,
                "cat": sp.category,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": round(ts, 6),
                "dur": round(dur, 6),
                "args": args,
            }
        )
    tracks = {
        f"{pid}/{tid}": ("main" if group == "main" else f"{group} {lane}")
        for (group, lane), (pid, tid) in table.items()
    }
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": clock,
            "tracks": tracks,
        },
    }


def write_chrome_trace(tracer: "Tracer", path, *, clock: str = "sim") -> int:
    """Write the Chrome trace JSON to ``path``; returns the span count
    (track-naming metadata events are not counted)."""
    doc = to_chrome_trace(tracer, clock=clock)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return sum(1 for ev in doc["traceEvents"] if ev["ph"] == "X")


# ----------------------------------------------------------------------
# flame-style text summary
# ----------------------------------------------------------------------


def _fmt_seconds(seconds: float) -> str:
    for unit, factor in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6)):
        if seconds >= factor:
            return f"{seconds / factor:.2f} {unit}"
    return f"{seconds / 1e-9:.1f} ns"


def render_flame(tracer: "Tracer", *, min_share: float = 0.0) -> str:
    """Flame-style text tree: inclusive simulated seconds by name path.

    Repeated spans with the same path (all iterations, all components of
    one kind) fold into one row with a count.  ``min_share`` hides rows
    below that fraction of the total simulated time.
    """
    spans = _closed_spans(tracer)
    if not spans:
        return "(no spans recorded)"
    paths = _span_path(tracer)
    agg: dict[str, dict] = {}
    for sp in spans:
        row = agg.setdefault(
            paths[sp.sid],
            {"count": 0, "sim": 0.0, "wall": 0.0, "depth": sp.depth},
        )
        row["count"] += 1
        row["sim"] += sp.sim_seconds
        row["wall"] += sp.wall_seconds
    total = sum(r["sim"] for p, r in agg.items() if r["depth"] == 0) or 1e-30
    width = max(len("span"), max(2 * r["depth"] + len(p.rsplit("/", 1)[-1]) for p, r in agg.items()))
    out = [
        f"{'span':<{width}}  {'count':>6}  {'sim time':>10}  {'share':>6}  {'wall':>10}",
        "-" * (width + 40),
    ]
    for path in sorted(agg):  # depth-first: paths sort under their parents
        row = agg[path]
        share = row["sim"] / total
        if share < min_share and row["depth"] > 0:
            continue
        label = "  " * row["depth"] + path.rsplit("/", 1)[-1]
        out.append(
            f"{label:<{width}}  {row['count']:>6}  {_fmt_seconds(row['sim']):>10}"
            f"  {100 * share:>5.1f}%  {_fmt_seconds(row['wall']):>10}"
        )
    return "\n".join(out)


# ----------------------------------------------------------------------
# flat CSV of span aggregates
# ----------------------------------------------------------------------


def span_aggregates(tracer: "Tracer") -> list[dict]:
    """One row per span name path: count, clock totals, summed counters."""
    spans = _closed_spans(tracer)
    paths = _span_path(tracer)
    agg: dict[str, dict] = {}
    for sp in spans:
        row = agg.setdefault(
            paths[sp.sid],
            {
                "path": paths[sp.sid],
                "category": sp.category,
                "count": 0,
                "sim_seconds": 0.0,
                "wall_seconds": 0.0,
                "counters": defaultdict(float),
            },
        )
        row["count"] += 1
        row["sim_seconds"] += sp.sim_seconds
        row["wall_seconds"] += sp.wall_seconds
        for key, val in sp.counters.items():
            row["counters"][key] += val
    out = []
    for path in sorted(agg):
        row = agg[path]
        out.append({**{k: v for k, v in row.items() if k != "counters"},
                    **dict(row["counters"])})
    return out


def write_span_csv(tracer: "Tracer", path) -> int:
    """Write :func:`span_aggregates` as CSV; returns the row count."""
    rows = span_aggregates(tracer)
    fixed = ["path", "category", "count", "sim_seconds", "wall_seconds"]
    counter_keys = sorted({k for r in rows for k in r if k not in fixed})
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(fixed + counter_keys)
        for row in rows:
            writer.writerow(
                [row[k] for k in fixed] + [row.get(k, 0.0) for k in counter_keys]
            )
    return len(rows)
