"""Trace exporters: Chrome ``trace_event`` JSON, flame text, span CSV.

Three views of one :class:`~repro.obs.tracer.Tracer`:

- :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format (the "JSON Array with metadata" variant),
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev.  Spans
  become complete (``"ph": "X"``) events; by default timestamps are the
  *simulated* clock, so the rendered timeline is the modeled machine's —
  the per-iteration structure behind the paper's Fig. 10/11 breakdowns —
  not the simulator's own wall time (pass ``clock="wall"`` for that).
- :func:`render_flame` — a flame-graph-style text summary aggregated by
  span name path, inclusive simulated seconds, counts, and counters.
- :func:`span_aggregates` / :func:`write_span_csv` — a flat table of
  per-path aggregates for spreadsheet analysis.

All exporters skip still-open spans (a trace is normally exported after
the traced run returns, when every span is closed).
"""

from __future__ import annotations

import csv
import json
from collections import defaultdict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.tracer import Span, Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "render_flame",
    "span_aggregates",
    "write_span_csv",
]


def _closed_spans(tracer: "Tracer") -> list["Span"]:
    return [sp for sp in tracer.spans if sp.closed]


def _span_path(tracer: "Tracer") -> dict[int, str]:
    """sid -> '/'-joined name path from the root (names, not indices)."""
    by_sid = {sp.sid: sp for sp in tracer.spans}
    paths: dict[int, str] = {}
    for sp in tracer.spans:
        if sp.parent is None or sp.parent not in paths:
            paths[sp.sid] = sp.name
        else:
            paths[sp.sid] = f"{paths[sp.parent]}/{sp.name}"
    del by_sid
    return paths


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------


def to_chrome_trace(tracer: "Tracer", *, clock: str = "sim") -> dict:
    """Render the span tree as a Chrome ``trace_event`` document.

    ``clock="sim"`` (default) places events on the simulated timeline;
    ``clock="wall"`` uses host wall time relative to the first span.
    Timestamps are microseconds, as the format requires.  Every event
    carries its attrs and counters in ``args`` (plus the other clock's
    duration), so nothing recorded is lost in export.
    """
    if clock not in ("sim", "wall"):
        raise ValueError(f"clock must be 'sim' or 'wall', got {clock!r}")
    spans = _closed_spans(tracer)
    events = []
    wall0 = min((sp.wall_start for sp in spans), default=0.0)
    for sp in spans:
        if clock == "sim":
            ts, dur = sp.sim_start * 1e6, sp.sim_seconds * 1e6
            other = {"wall_us": round(sp.wall_seconds * 1e6, 3)}
        else:
            ts = (sp.wall_start - wall0) * 1e6
            dur = sp.wall_seconds * 1e6
            other = {"sim_us": round(sp.sim_seconds * 1e6, 6)}
        args = {**sp.attrs, **sp.counters, **other}
        events.append(
            {
                "name": sp.name,
                "cat": sp.category,
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": round(ts, 6),
                "dur": round(dur, 6),
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "clock": clock},
    }


def write_chrome_trace(tracer: "Tracer", path, *, clock: str = "sim") -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count."""
    doc = to_chrome_trace(tracer, clock=clock)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


# ----------------------------------------------------------------------
# flame-style text summary
# ----------------------------------------------------------------------


def _fmt_seconds(seconds: float) -> str:
    for unit, factor in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6)):
        if seconds >= factor:
            return f"{seconds / factor:.2f} {unit}"
    return f"{seconds / 1e-9:.1f} ns"


def render_flame(tracer: "Tracer", *, min_share: float = 0.0) -> str:
    """Flame-style text tree: inclusive simulated seconds by name path.

    Repeated spans with the same path (all iterations, all components of
    one kind) fold into one row with a count.  ``min_share`` hides rows
    below that fraction of the total simulated time.
    """
    spans = _closed_spans(tracer)
    if not spans:
        return "(no spans recorded)"
    paths = _span_path(tracer)
    agg: dict[str, dict] = {}
    for sp in spans:
        row = agg.setdefault(
            paths[sp.sid],
            {"count": 0, "sim": 0.0, "wall": 0.0, "depth": sp.depth},
        )
        row["count"] += 1
        row["sim"] += sp.sim_seconds
        row["wall"] += sp.wall_seconds
    total = sum(r["sim"] for p, r in agg.items() if r["depth"] == 0) or 1e-30
    width = max(len("span"), max(2 * r["depth"] + len(p.rsplit("/", 1)[-1]) for p, r in agg.items()))
    out = [
        f"{'span':<{width}}  {'count':>6}  {'sim time':>10}  {'share':>6}  {'wall':>10}",
        "-" * (width + 40),
    ]
    for path in sorted(agg):  # depth-first: paths sort under their parents
        row = agg[path]
        share = row["sim"] / total
        if share < min_share and row["depth"] > 0:
            continue
        label = "  " * row["depth"] + path.rsplit("/", 1)[-1]
        out.append(
            f"{label:<{width}}  {row['count']:>6}  {_fmt_seconds(row['sim']):>10}"
            f"  {100 * share:>5.1f}%  {_fmt_seconds(row['wall']):>10}"
        )
    return "\n".join(out)


# ----------------------------------------------------------------------
# flat CSV of span aggregates
# ----------------------------------------------------------------------


def span_aggregates(tracer: "Tracer") -> list[dict]:
    """One row per span name path: count, clock totals, summed counters."""
    spans = _closed_spans(tracer)
    paths = _span_path(tracer)
    agg: dict[str, dict] = {}
    for sp in spans:
        row = agg.setdefault(
            paths[sp.sid],
            {
                "path": paths[sp.sid],
                "category": sp.category,
                "count": 0,
                "sim_seconds": 0.0,
                "wall_seconds": 0.0,
                "counters": defaultdict(float),
            },
        )
        row["count"] += 1
        row["sim_seconds"] += sp.sim_seconds
        row["wall_seconds"] += sp.wall_seconds
        for key, val in sp.counters.items():
            row["counters"][key] += val
    out = []
    for path in sorted(agg):
        row = agg[path]
        out.append({**{k: v for k, v in row.items() if k != "counters"},
                    **dict(row["counters"])})
    return out


def write_span_csv(tracer: "Tracer", path) -> int:
    """Write :func:`span_aggregates` as CSV; returns the row count."""
    rows = span_aggregates(tracer)
    fixed = ["path", "category", "count", "sim_seconds", "wall_seconds"]
    counter_keys = sorted({k for r in rows for k in r if k not in fixed})
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(fixed + counter_keys)
        for row in rows:
            writer.writerow(
                [row[k] for k in fixed] + [row.get(k, 0.0) for k in counter_keys]
            )
    return len(rows)
