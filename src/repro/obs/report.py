"""RunReport: the canonical JSON artifact of one measured run.

A :class:`RunReport` captures everything needed to compare two runs of
the simulator without re-running either: a schema version, a sha256
fingerprint of the configuration that produced it, the tracked scalar
metrics (GTEPS, simulated second/byte totals), the ledger breakdowns
behind Figs. 10/11, the per-iteration direction matrix (§4.2), and
summaries of the registry's histogram/vector families (Fig. 13 balance).

Builders exist for each entry point that produces results:

- :func:`report_from_bfs` — one :class:`~repro.core.metrics.BFSRunResult`
  (``DistributedBFS.run`` or any baseline engine);
- :func:`report_from_graph500` — a full
  :class:`~repro.graph500.driver.Graph500Report` (all sampled roots);
- :func:`bfs_smoke_report` — the pinned SCALE-10 smoke configuration the
  benchmark suite and the CI perf gate share, so ``benchmarks/results/
  BENCH_bfs_smoke.json`` and a fresh ``python -m repro report`` candidate
  are comparable artifact-for-artifact.

:func:`compare_reports` diffs two reports metric by metric with a
direction-of-goodness per metric (GTEPS up is good, seconds/bytes down
is good) and flags any change past a relative threshold — the
``python -m repro compare OLD NEW --max-regress 5%`` CI gate.

All simulated quantities are deterministic for a fixed configuration, so
an exact-equality compare of two reports from the same config is
expected to pass; the threshold exists to absorb intentional model
changes and cross-version floating-point drift.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "RUN_REPORT_SCHEMA",
    "HIGHER_BETTER",
    "RunReport",
    "MetricDelta",
    "config_fingerprint",
    "wallclock_metrics",
    "worker_telemetry_metrics",
    "report_from_bfs",
    "report_from_graph500",
    "report_from_serve",
    "report_from_program",
    "bfs_smoke_report",
    "PROGRAMS_SMOKE_CONFIG",
    "programs_smoke_report",
    "compare_reports",
    "render_compare",
    "parse_threshold",
]

#: Schema tag embedded in every artifact; bump the suffix on breaking
#: layout changes so ``RunReport.load`` can reject incompatible files.
RUN_REPORT_SCHEMA = "repro.run_report/1"

#: Tracked metrics where an *increase* is an improvement.  Everything
#: else (seconds, bytes, iterations) regresses when it grows.
HIGHER_BETTER = frozenset({
    "gteps", "harmonic_mean_teps", "mean_gteps",
    "serve.cache_hit_rate", "serve.mean_batch_size", "serve.qps",
    "wallclock.gteps",
})


def wallclock_metrics(tracer, *, num_edges: int | None = None) -> dict:
    """``wallclock.*`` metrics from a run's tracer.

    Every traversal (sequential BFS, vertex program, batched wave) opens
    one ``category="bfs"`` span, stamped against the host's
    ``perf_counter`` alongside the simulated clock; their wall time is
    where an execution backend's real parallelism shows up, while every
    ``seconds``/``gteps`` metric stays pinned to the simulated machine.
    With ``num_edges``, a derived ``wallclock.gteps`` reports how fast
    the host actually traversed (edges per traversal x traversals /
    wall seconds).  Empty when the tracer saw no traversal.
    """
    spans = [
        sp
        for sp in getattr(tracer, "spans", None) or []
        if getattr(sp, "category", "") == "bfs"
    ]
    if not spans:
        return {}
    seconds = float(sum(sp.wall_seconds for sp in spans))
    out = {
        "wallclock.traversal_seconds": seconds,
        "wallclock.traversals": float(len(spans)),
    }
    if num_edges and seconds > 0.0:
        out["wallclock.gteps"] = (
            float(num_edges) * len(spans) / seconds / 1e9
        )
    return out


def worker_telemetry_metrics(registry) -> dict:
    """``worker.*`` metrics from a parallel backend's telemetry.

    Reads the ``worker_busy_seconds`` / ``worker_idle_seconds`` /
    ``worker_tasks`` counter families and the per-dispatch
    ``worker_chunk_skew`` histogram that a telemetry-attached shared-
    memory backend populates.  Per worker ``w``, ``worker.utilization.w``
    is busy / (busy + idle + attach) — the fraction of its measured
    lifetime spent in chunk bodies.  ``worker.chunk_skew_mean`` averages
    the per-dispatch max/mean busy-time ratio (1.0 = perfectly balanced
    chunks).  Empty when no worker telemetry was recorded.
    """
    from repro.obs.metrics import MetricsRegistry

    if not isinstance(registry, MetricsRegistry):
        return {}
    families = registry.families()
    if "worker_busy_seconds" not in families:
        return {}
    busy: dict[str, float] = {}
    idle: dict[str, float] = {}
    attach: dict[str, float] = {}
    tasks: dict[str, float] = {}
    for target, family in (
        (busy, "worker_busy_seconds"),
        (idle, "worker_idle_seconds"),
        (attach, "worker_attach_seconds"),
        (tasks, "worker_tasks"),
    ):
        if family not in families:
            continue
        for labels, inst in registry.samples(family):
            wid = str(labels.get("worker", "?"))
            target[wid] = target.get(wid, 0.0) + float(inst.value)
    out: dict = {
        "worker.count": float(len(busy)),
        "worker.busy_seconds_total": float(sum(busy.values())),
        "worker.tasks_total": float(sum(tasks.values())),
    }
    for wid in sorted(busy, key=lambda w: (len(w), w)):
        span = busy[wid] + idle.get(wid, 0.0) + attach.get(wid, 0.0)
        out[f"worker.busy_seconds.{wid}"] = float(busy[wid])
        out[f"worker.utilization.{wid}"] = (
            float(busy[wid] / span) if span > 0.0 else 0.0
        )
    if "worker_chunk_skew" in families:
        total = count = 0.0
        for _labels, inst in registry.samples("worker_chunk_skew"):
            s = inst.summary()
            total += float(s.get("sum", 0.0))
            count += float(s.get("count", 0.0))
        if count:
            out["worker.chunk_skew_mean"] = total / count
            out["worker.dispatches"] = count
    return out


def config_fingerprint(payload: dict) -> str:
    """sha256 over the canonical JSON of a configuration mapping.

    Key order and whitespace are normalized so two reports built from
    the same logical configuration fingerprint identically regardless of
    construction order.
    """
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


@dataclass
class RunReport:
    """One run's comparable artifact (see module docstring)."""

    #: Human label for the run ("bfs", "graph500", "bfs_smoke", ...).
    name: str
    #: sha256 of the producing configuration (:func:`config_fingerprint`).
    fingerprint: str
    #: The fingerprinted configuration itself: scale/mesh/seed/engine
    #: plus every :class:`~repro.core.config.BFSConfig` field.
    context: dict
    #: Tracked scalar metrics; the compare gate diffs these.
    metrics: dict
    #: Ledger breakdowns: ``seconds_by_phase``, ``comm_seconds_by_kind``,
    #: ``bytes_by_kind``, ``time_by_category``.
    breakdowns: dict = field(default_factory=dict)
    #: Per-iteration ``{component: direction}`` matrix (§4.2 trace).
    directions: list = field(default_factory=list)
    #: Histogram/vector family summaries keyed ``name{label=value,...}``.
    summaries: dict = field(default_factory=dict)
    schema: str = RUN_REPORT_SCHEMA

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        schema = data.get("schema", "")
        family = RUN_REPORT_SCHEMA.rsplit("/", 1)[0]
        if not str(schema).startswith(family):
            raise ValueError(
                f"not a RunReport artifact (schema={schema!r}, "
                f"expected {family}/*)"
            )
        fields = {
            k: data[k]
            for k in (
                "name", "fingerprint", "context", "metrics",
                "breakdowns", "directions", "summaries", "schema",
            )
            if k in data
        }
        return cls(**fields)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """ASCII summary of the tracked metrics and breakdowns."""
        from repro.analysis.reporting import ascii_table, format_seconds

        def fmt(key: str, value: float) -> str:
            if (key.endswith("seconds") or key.endswith("_time")
                    or key.startswith("seconds.")):
                return format_seconds(float(value))
            return f"{value:.6g}"

        rows = [(k, fmt(k, v)) for k, v in sorted(self.metrics.items())]
        out = [
            f"RunReport {self.name!r}  schema={self.schema}",
            f"fingerprint: {self.fingerprint[:16]}...",
            ascii_table(("metric", "value"), rows, title="tracked metrics"),
        ]
        for title, table in sorted(self.breakdowns.items()):
            rows = [(k, fmt("seconds" if "seconds" in title or "category" in title
                            else "", v))
                    for k, v in sorted(table.items())]
            out.append(ascii_table(("key", "value"), rows, title=title))
        if self.directions:
            components = sorted({c for row in self.directions for c in row})
            rows = [
                [i] + [row.get(c, "-") for c in components]
                for i, row in enumerate(self.directions)
            ]
            out.append(
                ascii_table(
                    ["iter"] + components, rows,
                    title="direction matrix (per iteration)",
                )
            )
        return "\n".join(out)


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------


def _kind_name(kind) -> str:
    return getattr(kind, "value", str(kind))


def _breakdowns_from(ledger, result=None) -> dict:
    out = {
        "seconds_by_phase": {
            k: float(v) for k, v in ledger.seconds_by_phase().items()
        },
        "comm_seconds_by_kind": {
            _kind_name(k): float(v)
            for k, v in ledger.comm_seconds_by_kind().items()
        },
        "bytes_by_kind": {
            _kind_name(k): float(v) for k, v in ledger.bytes_by_kind().items()
        },
    }
    if result is not None:
        out["time_by_category"] = {
            k: float(v) for k, v in result.time_by_category().items()
        }
    return out


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _registry_summaries(registry) -> dict:
    """Histogram/vector summaries from a live registry (empty for NULL)."""
    from repro.obs.metrics import MetricsRegistry

    if not isinstance(registry, MetricsRegistry):
        return {}
    out: dict = {}
    for name, kind in sorted(registry.families().items()):
        if kind not in ("histogram", "vector"):
            continue
        for labels, inst in registry.samples(name):
            out[name + _label_suffix(labels)] = inst.summary()
    return out


def _direction_matrix(iterations) -> list:
    return [dict(rec.directions) for rec in iterations]


def _context(name: str, config=None, extra: dict | None = None) -> dict:
    ctx = {"engine": name}
    if config is not None:
        ctx["config"] = asdict(config)
    ctx.update(extra or {})
    return ctx


def report_from_bfs(
    result,
    *,
    name: str = "bfs",
    config=None,
    context: dict | None = None,
    tracer=None,
    backend=None,
) -> RunReport:
    """Build a :class:`RunReport` from one BFS run.

    ``result`` is a :class:`~repro.core.metrics.BFSRunResult`; ``config``
    the :class:`~repro.core.config.BFSConfig` it ran under (folded into
    the fingerprint); ``context`` any extra fingerprinted facts (scale,
    mesh shape, seed, root).  Pass the run's ``tracer`` to add the
    ``wallclock.*`` section and its execution ``backend`` to fold the
    backend name and worker count into the fingerprinted context.
    """
    ledger = result.ledger
    ctx = _context(name, config, context)
    if backend is not None:
        for key, value in backend.describe().items():
            ctx.setdefault(key, value)
    metrics = {
        "gteps": float(result.simulated_gteps()),
        "total_seconds": float(result.total_seconds),
        "comm_seconds": float(ledger.comm_seconds),
        "compute_seconds": float(ledger.compute_seconds),
        "imbalance_seconds": float(ledger.imbalance_seconds),
        "total_bytes": float(ledger.total_bytes),
        "iterations": float(result.num_iterations),
    }
    for phase, secs in ledger.seconds_by_phase().items():
        metrics[f"seconds.{phase}"] = float(secs)
    if tracer is not None:
        metrics.update(
            wallclock_metrics(tracer, num_edges=result.num_input_edges)
        )
    return RunReport(
        name=name,
        fingerprint=config_fingerprint(ctx),
        context=ctx,
        metrics=metrics,
        breakdowns=_breakdowns_from(ledger, result),
        directions=_direction_matrix(result.iterations),
        summaries=_registry_summaries(result.metrics),
    )


def report_from_graph500(
    report,
    *,
    name: str = "graph500",
    config=None,
    context: dict | None = None,
    tracer=None,
    backend=None,
) -> RunReport:
    """Build a :class:`RunReport` from a full Graph500 benchmark run.

    Scalar metrics carry the spec's aggregates (harmonic-mean TEPS, the
    time statistics) plus ledger totals summed over every root's BFS;
    breakdowns and the direction matrix come from the first root (the
    per-root shapes are near-identical on an R-MAT graph).
    """
    ctx = _context(name, config, context)
    if backend is not None:
        for key, value in backend.describe().items():
            ctx.setdefault(key, value)
    ctx.setdefault("scale", int(report.problem.scale))
    ctx.setdefault("num_nodes", int(report.num_nodes))
    ctx.setdefault("num_roots", int(report.roots.size))
    t = report.time_stats
    metrics = {
        "harmonic_mean_teps": float(report.harmonic_mean_teps),
        "mean_gteps": float(report.mean_gteps),
        "construction_seconds": float(report.construction_seconds),
        "mean_time": float(t.mean),
        "max_time": float(t.maximum),
    }
    breakdowns: dict = {}
    directions: list = []
    if report.results:
        total = {
            "total_seconds": 0.0, "comm_seconds": 0.0,
            "compute_seconds": 0.0, "imbalance_seconds": 0.0,
            "total_bytes": 0.0, "iterations": 0.0,
        }
        for res in report.results:
            total["total_seconds"] += res.total_seconds
            total["comm_seconds"] += res.ledger.comm_seconds
            total["compute_seconds"] += res.ledger.compute_seconds
            total["imbalance_seconds"] += res.ledger.imbalance_seconds
            total["total_bytes"] += res.ledger.total_bytes
            total["iterations"] += res.num_iterations
        metrics.update({k: float(v) for k, v in total.items()})
        first = report.results[0]
        breakdowns = _breakdowns_from(first.ledger, first)
        directions = _direction_matrix(first.iterations)
    resilience = getattr(report, "resilience", None)
    if resilience:
        # Only faulty runs grow these keys, so a fault-free report stays
        # bit-identical to the pinned smoke baseline.
        ctx.setdefault("resilience", {
            "checkpoint_every": resilience.get("checkpoint_every", 0),
            "recovery_mode": resilience.get("recovery_mode", "restart"),
        })
        for key in (
            "crashes", "restarts", "wasted_seconds", "excised_vertices",
            "faults_fired", "retries", "corruptions_detected",
        ):
            if key in resilience:
                metrics[f"resilience.{key}"] = float(resilience[key])
    if tracer is not None:
        metrics.update(
            wallclock_metrics(tracer, num_edges=report.problem.num_edges)
        )
    return RunReport(
        name=name,
        fingerprint=config_fingerprint(ctx),
        context=ctx,
        metrics=metrics,
        breakdowns=breakdowns,
        directions=directions,
        summaries=_registry_summaries(report.metrics),
    )


def report_from_serve(
    service,
    workload=None,
    *,
    name: str = "serve",
    context: dict | None = None,
) -> RunReport:
    """Build a :class:`RunReport` from a serving session.

    ``service`` is a (stopped) :class:`~repro.serve.service.TraversalService`;
    ``workload`` optionally a
    :class:`~repro.serve.workload.WorkloadReport` from the closed-loop
    driver, adding the client-side view (wrong parents, shed retries).
    The ``serve.*`` metric family covers admission (requests, shed,
    failed), batching (batches, mean batch size), the cache (hit rate),
    wall latency (p50/p99), and the amortized simulated cost per query.
    """
    stats = service.stats
    ctx = _context(name, None, context)
    ctx.setdefault("queue_depth", int(service.queue_depth))
    ctx.setdefault("batch_size", int(service.batch_size))
    ctx.setdefault("batch_window", float(service.batch_window))
    ctx.setdefault("graph_fingerprint", service.graph_fingerprint)
    metrics = {
        "serve.requests": float(stats.requests),
        "serve.completed": float(stats.completed),
        "serve.cache_hits": float(stats.cache_hits),
        "serve.shed": float(stats.shed),
        "serve.failed": float(stats.failed),
        "serve.replays": float(stats.replays),
        "serve.batches": float(stats.batches),
        "serve.mean_batch_size": float(stats.mean_batch_size),
        "serve.cache_hit_rate": float(stats.cache_hit_rate),
        "serve.sim_seconds_per_query": float(stats.sim_seconds_per_query),
        "serve.p50_seconds": float(stats.p50_seconds),
        "serve.p99_seconds": float(stats.p99_seconds),
    }
    if workload is not None:
        metrics["serve.workload_queries"] = float(workload.num_queries)
        metrics["serve.wrong_parents"] = float(workload.wrong_parents)
        metrics["serve.validated_queries"] = float(workload.validated)
        metrics["serve.shed_retries"] = float(workload.shed_retries)
    return RunReport(
        name=name,
        fingerprint=config_fingerprint(ctx),
        context=ctx,
        metrics=metrics,
        summaries=_registry_summaries(service._metrics),
    )


def report_from_program(
    result,
    *,
    name: str | None = None,
    context: dict | None = None,
) -> RunReport:
    """Build a :class:`RunReport` from one vertex-program run.

    ``result`` is a :class:`~repro.core.programs.base.ProgramRunResult`;
    the tracked metrics carry the ledger totals, the iteration count,
    the traversal rate over the input edges, and every numeric scalar
    the program reported through
    :meth:`~repro.core.programs.base.VertexProgram.info` (relaxations,
    bucket counts, component counts, residuals, ...).
    """
    ledger = result.ledger
    ctx = _context(name or f"program.{result.program}", None, context)
    ctx.setdefault("program", result.program)
    metrics = {
        "gteps": float(result.gteps()),
        "total_seconds": float(result.total_seconds),
        "comm_seconds": float(ledger.comm_seconds),
        "compute_seconds": float(ledger.compute_seconds),
        "imbalance_seconds": float(ledger.imbalance_seconds),
        "total_bytes": float(result.total_bytes),
        "iterations": float(result.num_iterations),
        "converged": float(result.converged),
    }
    for key, value in sorted(result.info.items()):
        if isinstance(value, (int, float, bool)):
            metrics[f"info.{key}"] = float(value)
    return RunReport(
        name=ctx["engine"],
        fingerprint=config_fingerprint(ctx),
        context=ctx,
        metrics=metrics,
        breakdowns=_breakdowns_from(ledger),
        directions=_direction_matrix(result.iterations),
    )


#: The pinned smoke configuration the bench suite, the CI gate, and the
#: committed ``benchmarks/results/BENCH_bfs_smoke.json`` baseline share.
SMOKE_CONFIG = dict(
    scale=10, rows=2, cols=2, seed=7, num_roots=4,
    e_threshold=128, h_threshold=16,
)


def bfs_smoke_report(*, metrics=None, tracer=None, **overrides) -> RunReport:
    """Run the SCALE-10 Graph500 smoke and report it.

    One shared entry point so the benchmark's emitted baseline and the
    CLI's fresh candidate are built from byte-identical configuration —
    any metric delta between them is a real behavior change, not a
    harness mismatch.
    """
    from repro.graph500.driver import run_graph500

    cfg = dict(SMOKE_CONFIG)
    cfg.update(overrides)
    g500 = run_graph500(
        cfg["scale"], cfg["rows"], cfg["cols"],
        seed=cfg["seed"], num_roots=cfg["num_roots"],
        e_threshold=cfg["e_threshold"], h_threshold=cfg["h_threshold"],
        tracer=tracer, metrics=metrics,
    )
    return report_from_graph500(g500, name="bfs_smoke", context=cfg)


#: The pinned configuration of the ``programs-smoke`` CI step and the
#: committed ``benchmarks/results/BENCH_programs_smoke.json`` baseline:
#: every registered vertex program on one seeded SCALE-12 graph.
PROGRAMS_SMOKE_CONFIG = dict(
    scale=12, rows=2, cols=2, seed=7,
    e_threshold=128, h_threshold=16, weight_seed=8,
)


def programs_smoke_report(*, metrics=None, tracer=None, **overrides) -> RunReport:
    """Run every registered program on the pinned SCALE-12 graph.

    One partition, one engine configuration; each program runs through
    :meth:`~repro.core.engine.DistributedBFS.run_program` (BFS through
    the native ``run``) and contributes ``program.<name>.*`` tracked
    metrics — simulated seconds/bytes, iteration counts, and each
    program's own convergence scalars (relaxations, buckets, component
    and triangle counts, PageRank residual).  All quantities are
    deterministic for the pinned config, so the
    ``compare_reports`` gate pins behaviour exactly like the BFS smoke.
    """
    import numpy as np

    from repro.core import DistributedBFS, build_program, partition_graph
    from repro.core.programs import PROGRAM_REGISTRY, generate_weights
    from repro.graph500.rmat import generate_edges
    from repro.machine.network import MachineSpec
    from repro.runtime.mesh import ProcessMesh

    cfg = dict(PROGRAMS_SMOKE_CONFIG)
    cfg.update(overrides)
    src, dst = generate_edges(cfg["scale"], seed=cfg["seed"])
    n = 1 << cfg["scale"]
    rows, cols = cfg["rows"], cfg["cols"]
    machine = MachineSpec(
        num_nodes=rows * cols, nodes_per_supernode=cols
    ).scaled_for(src.size / (rows * cols))
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(
        src, dst, n, mesh,
        e_threshold=cfg["e_threshold"], h_threshold=cfg["h_threshold"],
    )
    hub = int(np.argmax(part.degrees))
    weights = generate_weights(src.size, seed=cfg["weight_seed"])
    params: dict[str, dict] = {
        "sssp": dict(root=hub, weights=weights, edge_src=src, edge_dst=dst),
        "sssp-delta": dict(root=hub, weights=weights, edge_src=src,
                           edge_dst=dst),
        "pagerank": dict(),
        "cc": dict(),
        "triangles": dict(),
    }
    report_metrics: dict = {}
    directions: list = []
    for name, spec in sorted(PROGRAM_REGISTRY.items()):
        engine = DistributedBFS(
            part, machine=machine, tracer=tracer, metrics=metrics
        )
        if spec.native_bfs:
            res = engine.run(hub)
            report_metrics["program.bfs.gteps"] = float(res.simulated_gteps())
            info = {}
        else:
            res = engine.run_program(build_program(name, part, **params[name]))
            info = {
                k: v for k, v in res.info.items()
                if isinstance(v, (int, float, bool))
            }
        prefix = f"program.{name}"
        report_metrics[f"{prefix}.iterations"] = float(res.num_iterations)
        report_metrics[f"{prefix}.total_seconds"] = float(res.total_seconds)
        report_metrics[f"{prefix}.total_bytes"] = float(res.ledger.total_bytes)
        for key, value in sorted(info.items()):
            report_metrics[f"{prefix}.{key}"] = float(value)
        if not directions:
            directions = _direction_matrix(res.iterations)
    return RunReport(
        name="programs_smoke",
        fingerprint=config_fingerprint({"engine": "programs_smoke", **cfg}),
        context={"engine": "programs_smoke", **cfg},
        metrics=report_metrics,
        directions=directions,
        summaries=_registry_summaries(metrics),
    )


# ----------------------------------------------------------------------
# the compare gate
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MetricDelta:
    """One tracked metric's change between two reports."""

    name: str
    old: float
    new: float
    #: Relative change ``(new - old) / old`` (``inf`` from a zero base).
    rel: float
    #: Whether an increase in this metric is an improvement.
    higher_better: bool
    #: True when the change crosses the threshold in the bad direction.
    regressed: bool

    @property
    def improved(self) -> bool:
        good = self.rel > 0 if self.higher_better else self.rel < 0
        return good and self.rel != 0.0


def parse_threshold(text: str) -> float:
    """``"5%"`` -> 0.05; ``"0.05"`` -> 0.05.  Must be nonnegative."""
    text = str(text).strip()
    if text.endswith("%"):
        value = float(text[:-1]) / 100.0
    else:
        value = float(text)
    if value < 0:
        raise ValueError(f"threshold must be nonnegative, got {text!r}")
    return value


def compare_reports(
    old: RunReport, new: RunReport, max_regress: float = 0.05
) -> list[MetricDelta]:
    """Diff the tracked metrics of two reports.

    Only metrics present in both are compared (a renamed or added metric
    is not a regression).  A metric regresses when it moves past
    ``max_regress`` relative change in its bad direction: down for the
    :data:`HIGHER_BETTER` set, up for everything else.
    """
    deltas = []
    for key in sorted(set(old.metrics) & set(new.metrics)):
        o, n = float(old.metrics[key]), float(new.metrics[key])
        if o == 0.0:
            rel = 0.0 if n == 0.0 else float("inf")
        else:
            rel = (n - o) / abs(o)
        higher_better = key in HIGHER_BETTER
        bad = -rel if higher_better else rel
        deltas.append(
            MetricDelta(
                name=key, old=o, new=n, rel=rel,
                higher_better=higher_better,
                regressed=bad > max_regress,
            )
        )
    return deltas


def render_compare(
    deltas: list[MetricDelta],
    *,
    max_regress: float = 0.05,
    title: str = "RunReport comparison",
) -> str:
    """ASCII table of metric deltas with a pass/fail verdict line."""
    from repro.analysis.reporting import ascii_table

    rows = []
    for d in deltas:
        if d.rel == float("inf"):
            pct = "+inf"
        else:
            pct = f"{d.rel * 100:+.2f}%"
        status = "REGRESSED" if d.regressed else ("improved" if d.improved else "ok")
        arrow = "higher=better" if d.higher_better else "lower=better"
        rows.append((d.name, f"{d.old:.6g}", f"{d.new:.6g}", pct, arrow, status))
    table = ascii_table(
        ("metric", "old", "new", "delta", "direction", "status"),
        rows, title=title,
    )
    bad = [d for d in deltas if d.regressed]
    if bad:
        verdict = (
            f"FAIL: {len(bad)} metric(s) regressed past "
            f"{max_regress * 100:g}%: " + ", ".join(d.name for d in bad)
        )
    elif not deltas:
        verdict = "PASS: no common tracked metrics to compare"
    else:
        verdict = f"PASS: {len(deltas)} metric(s) within {max_regress * 100:g}%"
    return table + "\n" + verdict
