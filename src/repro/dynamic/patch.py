"""Incremental repair of completed BFS and SSSP results.

A completed traversal is a large sunk cost; most update batches touch a
small part of the graph.  This module repairs results instead of
recomputing them, while staying **bit-identical** to a from-scratch run
on the repaired graph (the gate in :mod:`repro.dynamic.gate` asserts
this, so every shortcut below is an argument about exact equality, not
an approximation).

BFS (:func:`patch_bfs_result`)
------------------------------

Levels are unit-weight distances, so structure gives three facts:

- *Deleting a non-tree edge changes no level*: every vertex's tree path
  survives, and no distance can decrease by removing an edge.  Deleting
  a tree edge can, so that falls back to recomputing the root.
- *Inserting edges can only lower levels*: new levels are the fixpoint
  of relaxing the old levels over the repaired graph — a bounded
  cascade seeded at the inserted arcs, far cheaper than a traversal.
- *Parents are direction- and order-dependent*: the winner of vertex
  ``v`` is the first writer (push) or first active source in
  (rank, dst) group order (pull), resolved densest-component-first with
  mid-iteration freshness.  A prefix of the old run stays valid only up
  to the first iteration anything observable changed:

  1. the first iteration that assigns a changed level
     (``min(new_level) - 1`` over level-changed vertices);
  2. the first iteration a changed arc (inserted or migrated) can
     influence a winner (``min(old_level, new_level) - 1`` over the
     changed arcs' heads — removing a non-winner arc never changes a
     winner, and a removed winner arc is a tree edge, handled above);
  3. the first iteration whose *recorded* direction choices differ from
     what the repaired partition would choose — reclassification changes
     the class populations behind
     :meth:`~repro.core.direction.ClassState.measure`, so every kept
     iteration's directions are re-derived against the new partition
     (reconstructing mid-iteration visited state from the old levels
     plus each vertex's winner component) and compared to the record.

  The run resumes through the shared
  :class:`~repro.core.kernels.scheduler.LevelSyncScheduler` via a
  synthetic :class:`~repro.core.kernels.scheduler.ResumePoint` at the
  first affected level; iterations before it are kept verbatim.

SSSP (:func:`patch_sssp_result`)
--------------------------------

:class:`~repro.core.programs.sssp.BellmanFordProgram` forces push, and
distances are the unique min fixpoint over path sums — independent of
relaxation order, placement, and direction.  So: deleting a non-tree
edge (parent test) changes no distance; inserted edges re-converge from
the old distances by activating the tails of improving inserted arcs
through a :class:`~repro.core.kernels.scheduler.ProgramResumePoint`;
deleting a tree edge recomputes the root.  The gate compares distances
(parents may legitimately differ on equal-length ties).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.direction import (
    ClassState,
    choose_component_direction,
    choose_whole_iteration_direction,
)
from repro.core.kernels.scheduler import ProgramResumePoint, ResumePoint
from repro.core.partition import PartitionedGraph, place_arcs
from repro.core.programs.sssp import BellmanFordProgram, SSSPResult
from repro.core.subgraphs import COMPONENT_ORDER
from repro.dynamic.repair import GraphDelta
from repro.obs.metrics import NULL_METRICS

__all__ = [
    "PatchOutcome",
    "levels_from_parent",
    "patch_bfs_result",
    "patch_sssp_result",
]


@dataclass(frozen=True)
class PatchOutcome:
    """What happened to one cached result under a graph delta."""

    #: The repaired result (the old object itself when ``unchanged``).
    result: object
    #: ``"unchanged"`` | ``"patched"`` | ``"recomputed"``.
    mode: str
    #: First re-run iteration for ``patched`` (``None`` otherwise).
    resumed_from: int | None = None
    #: Ledger seconds the repair itself charged (0 when unchanged).
    seconds: float = 0.0


def levels_from_parent(parent: np.ndarray, root: int) -> np.ndarray:
    """BFS levels from a parent forest (-1 for unreachable vertices)."""
    n = parent.size
    level = np.full(n, -1, dtype=np.int64)
    level[root] = 0
    has_parent = parent >= 0
    while True:
        known = level >= 0
        cand = has_parent & ~known
        cand[cand] = known[parent[cand]]
        if not cand.any():
            return level
        level[cand] = level[parent[cand]] + 1


def _new_levels(
    part: PartitionedGraph,
    old_level: np.ndarray,
    ins_src: np.ndarray,
    ins_dst: np.ndarray,
) -> np.ndarray:
    """Unit-weight relaxation of the old levels over the repaired graph.

    Inserts only lower levels and non-tree deletions change none, so the
    fixpoint of this cascade *is* the new BFS level array.
    """
    n = part.num_vertices
    inf = np.int64(n + 1)
    work = np.where(old_level >= 0, old_level, inf).astype(np.int64)
    prev = work.copy()
    if ins_src.size:
        np.minimum.at(work, ins_dst, prev[ins_src] + 1)
    active = work < prev
    while active.any():
        prev = work.copy()
        for comp in part.components.values():
            if comp.num_arcs == 0:
                continue
            sel = comp.push_select(active)
            if sel.num_arcs:
                np.minimum.at(work, sel.dst, work[sel.src] + 1)
        active = work < prev
    return np.where(work <= n, work, np.int64(-1))


def _winner_components(
    part: PartitionedGraph, parent: np.ndarray, level: np.ndarray
) -> np.ndarray:
    """Component index of each reachable non-root vertex's winner arc
    ``(parent[v], v)`` under the repaired partition (-1 elsewhere)."""
    winner = np.full(part.num_vertices, -1, dtype=np.int64)
    vs = np.flatnonzero(level >= 1)
    if vs.size == 0:
        return winner
    comp_of, _ = place_arcs(
        parent[vs],
        vs,
        vclass=part.vclass,
        eh_col=part.eh_col,
        eh_row=part.eh_row,
        mesh=part.mesh,
        num_vertices=part.num_vertices,
        placement=part.placement,
    )
    winner[vs] = comp_of
    return winner


def _direction_prefix_limit(
    old, part: PartitionedGraph, config, old_level: np.ndarray, limit: int
) -> int:
    """First kept iteration whose directions a fresh run on the repaired
    partition would choose differently, or ``limit`` if none.

    Reclassification changes the per-class populations the direction
    heuristics divide by, so a flipped choice anywhere in the prefix
    invalidates that iteration's winners even when no arc near them
    changed.  Mid-iteration visited state is reconstructed exactly: at
    the start of component ``c``'s sub-iteration of level ``k``, visited
    is ``{level <= k}`` plus the level-``k+1`` vertices whose winner
    component ran earlier than ``c``.
    """
    names = list(COMPONENT_ORDER)
    state = ClassState(part.class_masks())
    winner = _winner_components(part, old.parent, old_level)
    for k in range(limit):
        active = old_level == k
        base_visited = (old_level >= 0) & (old_level <= k)
        record = old.iterations[k]
        if not config.sub_iteration_direction:
            expected = choose_whole_iteration_direction(
                active, base_visited, part.degrees, config
            )
            recorded = next(
                (d for d in record.directions.values() if d != "-"), None
            )
            if recorded is not None and recorded != expected:
                return k
            continue
        next_level = old_level == k + 1
        for ci, name in enumerate(names):
            if part.components[name].num_arcs == 0:
                continue  # the fresh run skips it
            if record.directions.get(name, "-") == "-":
                # Empty in the old graph: all its arcs are migrated-in,
                # whose heads bound the prefix elsewhere — it activates
                # nothing before the resume point.
                continue
            visited_now = base_visited | (next_level & (winner < ci))
            ratios = state.measure(active, visited_now)
            if (
                choose_component_direction(name, ratios, config)
                != record.directions[name]
            ):
                return k
    return limit


def patch_bfs_result(old, engine, delta: GraphDelta, *, metrics=NULL_METRICS):
    """Repair one completed BFS result under a graph delta.

    ``old`` is the :class:`~repro.core.metrics.BFSRunResult` computed on
    the pre-delta graph; ``engine`` is a
    :class:`~repro.core.engine.DistributedBFS` built on the *repaired*
    partition (engines freeze partition state at construction, so the
    caller rebuilds it after :meth:`~repro.dynamic.repair.IncrementalGraph.graph`).
    Returns a :class:`PatchOutcome` whose result is bit-identical (parent
    array) to ``engine.run(old.root)``.
    """
    part = engine.part
    n = part.num_vertices
    root = old.root
    old_level = levels_from_parent(old.parent, root)

    # Deleted tree edge: the winner arc itself is gone — recompute.
    if delta.deleted_src.size:
        d = delta.deleted_dst
        torn = old.parent[d] == delta.deleted_src
        if np.any(torn & (d != root)):
            result = engine.run(root)
            metrics.counter(
                "dynamic_result_patches", kind="bfs", outcome="recomputed"
            ).inc()
            return PatchOutcome(
                result, "recomputed", seconds=result.ledger.total_seconds
            )

    new_level = _new_levels(part, old_level, delta.inserted_src, delta.inserted_dst)

    inf = n + 2
    k_star = inf
    changed = np.flatnonzero(new_level != old_level)
    if changed.size:
        k_star = int(new_level[changed].min()) - 1
    heads = np.concatenate([delta.inserted_dst, delta.moved_dst])
    if heads.size:
        lv = np.minimum(
            np.where(old_level[heads] >= 0, old_level[heads], inf),
            np.where(new_level[heads] >= 0, new_level[heads], inf),
        )
        finite = lv < inf
        if np.any(finite):
            k_star = min(k_star, int(lv[finite].min()) - 1)

    limit = min(k_star, len(old.iterations))
    if limit > 0:
        k_star = min(
            k_star,
            _direction_prefix_limit(
                old, part, engine.config, old_level, limit
            ),
        )

    if k_star >= len(old.iterations):
        metrics.counter(
            "dynamic_result_patches", kind="bfs", outcome="unchanged"
        ).inc()
        return PatchOutcome(old, "unchanged")
    if k_star <= 0:
        result = engine.run(root)
        metrics.counter(
            "dynamic_result_patches", kind="bfs", outcome="recomputed"
        ).inc()
        return PatchOutcome(
            result, "recomputed", seconds=result.ledger.total_seconds
        )

    keep = (new_level >= 0) & (new_level <= k_star)
    resume = ResumePoint(
        root=root,
        iteration=k_star - 1,
        parent=np.where(keep, old.parent, np.int64(-1)),
        visited=keep,
        active=new_level == k_star,
        records=tuple(old.iterations[:k_star]),
    )
    result = engine.run(root, resume=resume)
    metrics.counter(
        "dynamic_result_patches", kind="bfs", outcome="patched"
    ).inc()
    return PatchOutcome(
        result, "patched", resumed_from=k_star,
        seconds=result.ledger.total_seconds,
    )


def patch_sssp_result(
    old, engine, delta: GraphDelta, *, weight_of, metrics=NULL_METRICS
):
    """Repair one completed SSSP result under a graph delta.

    ``old`` is an :class:`~repro.core.programs.sssp.SSSPResult`;
    ``engine`` a :class:`~repro.core.engine.DistributedBFS` on the
    repaired partition; ``weight_of`` the weight callable for the *new*
    edge set (content-hashed via
    :func:`~repro.dynamic.updates.weights_for_edges`, so surviving edges
    keep their weights).  The outcome's distances are bit-identical to a
    fresh run: Bellman-Ford distances are the unique min fixpoint, so
    re-converging from the old distances with the improving inserted
    arcs' tails activated lands on exactly the from-scratch float
    values (left-to-right sums along each winning path are identical).
    Parents may differ on equal-distance ties; compare distances.
    """
    root = old.root

    if delta.deleted_src.size:
        d = delta.deleted_dst
        torn = old.parent[d] == delta.deleted_src
        if np.any(torn & (d != root)):
            result = _fresh_sssp(engine, root, weight_of)
            metrics.counter(
                "dynamic_result_patches", kind="sssp", outcome="recomputed"
            ).inc()
            return PatchOutcome(
                result, "recomputed", seconds=result.ledger.total_seconds
            )

    seed = np.zeros(engine.part.num_vertices, dtype=bool)
    if delta.inserted_src.size:
        s, d = delta.inserted_src, delta.inserted_dst
        w = weight_of(s, d)
        improving = old.distance[s] + w < old.distance[d]
        seed[s[improving]] = True

    if not seed.any():
        metrics.counter(
            "dynamic_result_patches", kind="sssp", outcome="unchanged"
        ).inc()
        return PatchOutcome(old, "unchanged")

    program = BellmanFordProgram(root, weight_of)
    resume = ProgramResumePoint(
        program="sssp",
        iteration=-1,
        active=seed,
        state={
            "distance": old.distance.copy(),
            "parent": old.parent.copy(),
            "control": np.array([old.relaxations], dtype=np.int64),
        },
    )
    res = engine.run_program(program, resume=resume)
    result = SSSPResult(
        root=root,
        distance=res.state["distance"],
        parent=res.state["parent"],
        num_iterations=res.num_iterations,
        relaxations=program.relaxations,
        ledger=res.ledger,
    )
    metrics.counter(
        "dynamic_result_patches", kind="sssp", outcome="patched"
    ).inc()
    return PatchOutcome(
        result, "patched", resumed_from=0,
        seconds=result.ledger.total_seconds,
    )


def _fresh_sssp(engine, root: int, weight_of) -> SSSPResult:
    program = BellmanFordProgram(root, weight_of)
    res = engine.run_program(program)
    return SSSPResult(
        root=root,
        distance=res.state["distance"],
        parent=res.state["parent"],
        num_iterations=res.num_iterations,
        relaxations=program.relaxations,
        ledger=res.ledger,
    )
