"""The incremental-vs-rebuild equivalence gate.

The dynamic subsystem's whole claim is *bit-exactness under churn*:
after any update sequence, the incrementally repaired partition and the
incrementally patched results must equal — array for array, bit for
bit — a from-scratch rebuild of the live edge set plus a from-scratch
re-traversal.  :func:`run_equivalence_gate` drives that check across
seeded random update streams (insert-only, delete-only, mixed) over two
graph families (Graph500 R-MAT and a power-law configuration model):

per batch it

1. applies the batch through :class:`~repro.dynamic.repair.IncrementalGraph`
   and compacts;
2. rebuilds the partition from scratch with
   :meth:`~repro.dynamic.repair.IncrementalGraph.rebuild_reference` and
   compares every array of both partitions (:func:`parts_bitwise_equal`);
3. patches the previous batch's BFS result and SSSP result through
   :mod:`repro.dynamic.patch` and compares the patched parent array /
   distance array against fresh runs on the rebuilt partition.

Results chain: each batch patches the *previous* batch's (possibly
patched) result, so drift would compound and be caught.  The gate is
what ``python -m repro mutate --smoke`` runs in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BFSConfig
from repro.core.engine import DistributedBFS
from repro.core.partition import PartitionedGraph
from repro.core.programs.sssp import WeightTable
from repro.core.subgraphs import COMPONENT_ORDER
from repro.dynamic.patch import (
    _fresh_sssp,
    patch_bfs_result,
    patch_sssp_result,
)
from repro.dynamic.repair import IncrementalGraph
from repro.dynamic.updates import (
    UpdateSpec,
    generate_update_stream,
    weights_for_edges,
)
from repro.machine.network import MachineSpec
from repro.obs.metrics import NULL_METRICS
from repro.runtime.mesh import ProcessMesh

__all__ = ["CaseResult", "EquivalenceReport", "parts_bitwise_equal", "run_equivalence_gate"]

_VERTEX_FIELDS = (
    "degrees",
    "vclass",
    "eh_col",
    "eh_row",
    "e_ids",
    "h_ids",
    "col_eh_counts",
    "row_eh_counts",
    "l_per_rank",
)

_COMPONENT_FIELDS = (
    "src_ids",
    "src_indptr",
    "_push_dst",
    "_push_rank",
    "grp_ptr",
    "grp_dst",
    "grp_rank",
    "_pull_src",
    "arcs_per_rank",
)


def parts_bitwise_equal(
    a: PartitionedGraph, b: PartitionedGraph
) -> list[str]:
    """Every array of two partitions compared exactly; returns mismatch
    descriptions (empty = bit-identical)."""
    problems = []
    for name in _VERTEX_FIELDS:
        x, y = getattr(a, name), getattr(b, name)
        if x.shape != y.shape or not np.array_equal(x, y):
            problems.append(f"partition field {name} differs")
    for comp in COMPONENT_ORDER:
        ca, cb = a.components[comp], b.components[comp]
        for name in _COMPONENT_FIELDS:
            x, y = getattr(ca, name), getattr(cb, name)
            if x.shape != y.shape or not np.array_equal(x, y):
                problems.append(f"component {comp} array {name} differs")
    return problems


@dataclass
class CaseResult:
    """One (family, kind) stream's gate outcome."""

    family: str
    kind: str
    num_batches: int
    mismatches: list = field(default_factory=list)
    #: Patch modes per batch (``unchanged``/``patched``/``recomputed``).
    bfs_modes: list = field(default_factory=list)
    sssp_modes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class EquivalenceReport:
    """Aggregate outcome of :func:`run_equivalence_gate`."""

    cases: list

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases)

    @property
    def num_batches(self) -> int:
        return sum(c.num_batches for c in self.cases)

    def mode_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for c in self.cases:
            for m in c.bfs_modes + c.sssp_modes:
                counts[m] = counts.get(m, 0) + 1
        return counts

    def summary(self) -> str:
        lines = []
        for c in self.cases:
            status = "ok" if c.ok else f"FAIL ({len(c.mismatches)} mismatches)"
            lines.append(
                f"{c.family}/{c.kind}: {c.num_batches} batches, "
                f"bfs={','.join(c.bfs_modes)}, "
                f"sssp={','.join(c.sssp_modes)} -> {status}"
            )
            lines.extend(f"  - {m}" for m in c.mismatches[:8])
        return "\n".join(lines)


def _family_edges(family: str, scale: int, edge_factor: int, seed: int):
    if family == "rmat":
        from repro.graph500.rmat import generate_edges

        return generate_edges(scale, edge_factor=edge_factor, seed=seed)
    if family == "powerlaw":
        from repro.graphs.generators import power_law_edges

        # The default exponent (2.2) collapses to a handful of canonical
        # edges at gate scales (hub collisions dedup away); 1.5 keeps a
        # real edge set while staying strongly skewed.
        return power_law_edges(
            2**scale, edge_factor * 2**scale, exponent=1.5, seed=seed
        )
    if family == "ring":
        from repro.graphs.generators import ring_lattice_edges

        # Long-diameter family: deep BFS trees are what give the result
        # patcher a prefix worth keeping (R-MAT diameters are ~4, so
        # most deltas there touch level 0-1 and force recomputes).
        return ring_lattice_edges(2**scale, neighbors=2)
    raise ValueError(f"unknown graph family {family!r}")


def _gate_thresholds(degrees: np.ndarray) -> tuple[int, int]:
    """Class thresholds placing real populations in E, H and L, with the
    boundaries near live degree mass so update streams actually cross
    them (the migration path is the thing under test)."""
    nz = degrees[degrees > 0]
    if nz.size == 0:
        return 2, 1
    h = max(3, int(np.quantile(nz, 0.90)))
    e = max(h + 1, int(np.quantile(nz, 0.99)))
    return e, h


def run_equivalence_gate(
    *,
    scale: int = 7,
    edge_factor: int = 8,
    families: tuple = ("rmat", "powerlaw"),
    kinds: tuple = ("insert", "delete", "mixed"),
    batches: int = 3,
    batch_size: int = 48,
    compact_every: int = 2,
    seed: int = 7,
    rows: int = 2,
    cols: int = 2,
    metrics=NULL_METRICS,
    log=None,
) -> EquivalenceReport:
    """Run the full gate matrix; every stream must stay bit-identical.

    ``log`` (a ``str -> None`` callable) receives one progress line per
    case.  The defaults cover 6 streams x 3 batches in a few seconds.
    """
    n = 2**scale
    machine = MachineSpec(num_nodes=rows * cols, nodes_per_supernode=cols)
    cases = []
    for family in families:
        src, dst = _family_edges(family, scale, edge_factor, seed)
        for kind in kinds:
            case = _run_stream(
                family, kind, src, dst, n,
                batches=batches, batch_size=batch_size,
                compact_every=compact_every, seed=seed,
                rows=rows, cols=cols, machine=machine, metrics=metrics,
            )
            cases.append(case)
            if log is not None:
                log(
                    f"gate {family}/{kind}: "
                    f"{'ok' if case.ok else 'MISMATCH'}"
                )
    return EquivalenceReport(cases=cases)


def _run_stream(
    family, kind, src, dst, n, *,
    batches, batch_size, compact_every, seed, rows, cols, machine, metrics,
) -> CaseResult:
    mesh = ProcessMesh(rows, cols, machine=machine)
    from repro.dynamic.updates import canonical_edges
    from repro.graphs.stats import degrees_from_edges

    # Thresholds come from the *canonical* (deduplicated) degrees the
    # incremental graph actually maintains, not the raw multigraph ones.
    c_lo, c_hi = canonical_edges(src, dst, n)
    e_thr, h_thr = _gate_thresholds(degrees_from_edges(c_lo, c_hi, n))
    inc = IncrementalGraph(
        src, dst, n, mesh,
        e_threshold=e_thr, h_threshold=h_thr,
        machine=machine, compact_every=compact_every, metrics=metrics,
    )
    spec = UpdateSpec(kind=kind, batches=batches, size=batch_size)
    lo, hi = inc.edges()
    stream = generate_update_stream(lo, hi, n, spec, seed=seed)

    case = CaseResult(family=family, kind=kind, num_batches=len(stream))
    config = BFSConfig(e_threshold=e_thr, h_threshold=h_thr)

    part = inc.graph()
    root = int(np.argmax(part.degrees))
    engine = DistributedBFS(part, machine=machine, config=config)
    bfs_res = engine.run(root)
    weight_of = _weight_table(inc, n)
    sssp_res = _fresh_sssp(engine, root, weight_of)

    for batch in stream:
        report = inc.apply_batch(batch)
        part = inc.graph()
        ref = inc.rebuild_reference()
        case.mismatches.extend(
            f"batch {report.batch_index}: {p}"
            for p in parts_bitwise_equal(part, ref)
        )

        # Engines freeze partition state; rebuild on the repaired part.
        engine = DistributedBFS(part, machine=machine, config=config)
        ref_engine = DistributedBFS(ref, machine=machine, config=config)
        weight_of = _weight_table(inc, n)

        outcome = patch_bfs_result(
            bfs_res, engine, report.delta, metrics=metrics
        )
        case.bfs_modes.append(outcome.mode)
        bfs_res = outcome.result
        fresh = ref_engine.run(root)
        if not np.array_equal(bfs_res.parent, fresh.parent):
            case.mismatches.append(
                f"batch {report.batch_index}: BFS parents diverge "
                f"({int(np.count_nonzero(bfs_res.parent != fresh.parent))} "
                f"vertices, patch mode {outcome.mode})"
            )
            bfs_res = fresh  # re-anchor so later batches stay meaningful

        s_outcome = patch_sssp_result(
            sssp_res, engine, report.delta,
            weight_of=weight_of, metrics=metrics,
        )
        case.sssp_modes.append(s_outcome.mode)
        sssp_res = s_outcome.result
        s_fresh = _fresh_sssp(ref_engine, root, weight_of)
        if not np.array_equal(sssp_res.distance, s_fresh.distance):
            case.mismatches.append(
                f"batch {report.batch_index}: SSSP distances diverge "
                f"({int(np.count_nonzero(sssp_res.distance != s_fresh.distance))} "
                f"vertices, patch mode {s_outcome.mode})"
            )
            sssp_res = s_fresh
    return case


def _weight_table(inc: IncrementalGraph, n: int) -> WeightTable:
    lo, hi = inc.edges()
    return WeightTable(n, weights_for_edges(lo, hi, n), lo, hi)
