"""Streaming edge ingestion with incremental partition repair.

The static pipeline partitions once and freezes (``core/partition.py``);
this package makes the graph *mutable under traffic* without giving up
the bit-exactness the rest of the repo is built on:

- :mod:`repro.dynamic.updates` — the batched edge-update log: a seeded,
  deterministic stream of insert/delete batches over an evolving
  canonical edge set, plus the spec grammar the CLI exposes and the
  content-hashed edge weights that keep SSSP reproducible under churn.
- :mod:`repro.dynamic.repair` — :class:`~repro.dynamic.repair.IncrementalGraph`,
  a wrapper around :class:`~repro.core.partition.PartitionedGraph` that
  re-classifies E/H/L as degrees cross the delegation thresholds,
  migrates only the affected vertices' arcs between components, stages
  CSR changes in per-component delta overlays merged on a compaction
  cadence, and prices every repair through the shared
  :class:`~repro.runtime.ledger.TrafficLedger`.
- :mod:`repro.dynamic.patch` — incremental repair of completed BFS and
  SSSP results: inserted edges can only lower levels/distances, so a
  bounded frontier re-enters the
  :class:`~repro.core.kernels.scheduler.LevelSyncScheduler` at the first
  affected level instead of recomputing; deletions fall back to
  recomputing only the affected roots.
- :mod:`repro.dynamic.gate` — the incremental-vs-rebuild equivalence
  gate: after any update sequence, the repaired partition and the
  patched results must be bit-identical to a from-scratch rebuild plus
  re-traversal.

Everything here requires ``placement="stable"`` partitions (see
:mod:`repro.core.partition`): the default cyclic placement deals arcs by
their position in the edge array, which incremental repair cannot
reproduce.
"""

from repro.dynamic.gate import EquivalenceReport, run_equivalence_gate
from repro.dynamic.patch import (
    PatchOutcome,
    levels_from_parent,
    patch_bfs_result,
    patch_sssp_result,
)
from repro.dynamic.repair import GraphDelta, IncrementalGraph, RepairReport
from repro.dynamic.updates import (
    UpdateBatch,
    UpdateSpec,
    UpdateSpecError,
    apply_updates,
    canonical_edges,
    generate_update_stream,
    parse_update_spec,
    weights_for_edges,
)

__all__ = [
    "UpdateBatch",
    "UpdateSpec",
    "UpdateSpecError",
    "apply_updates",
    "canonical_edges",
    "generate_update_stream",
    "parse_update_spec",
    "weights_for_edges",
    "GraphDelta",
    "IncrementalGraph",
    "RepairReport",
    "PatchOutcome",
    "levels_from_parent",
    "patch_bfs_result",
    "patch_sssp_result",
    "EquivalenceReport",
    "run_equivalence_gate",
]
