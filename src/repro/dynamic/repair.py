"""Incremental partition repair: :class:`IncrementalGraph`.

The static pipeline (``core/partition.py``) prices a full construction —
every arc crosses the network once and is re-sorted — for *any* change.
:class:`IncrementalGraph` instead keeps a ``placement="stable"``
:class:`~repro.core.partition.PartitionedGraph` live under a stream of
:class:`~repro.dynamic.updates.UpdateBatch` deltas:

1. **Reclassification.**  Degrees are bumped in place; vertices whose
   degree crossed ``h_threshold``/``e_threshold`` change class, and only
   *their* incident arcs re-place.  Stable placement makes this sound:
   an arc's component and rank are pure functions of its endpoints'
   identities and classes, so an arc moves iff an endpoint's class
   changed (or the arc itself was inserted/deleted).
2. **Delta overlays.**  Each affected component accumulates an overlay
   of pending added/dropped arcs.  Every ``compact_every`` batches (or
   on demand via :meth:`graph`) the overlay is merged into the packed
   arrays with :func:`~repro.core.subgraphs.merge_arc_delta` — a linear
   merge, not a rebuild.  Because the packed orders are value sorts of
   arc content, the merged component is bit-identical to a from-scratch
   rebuild of the same arc set; :mod:`repro.dynamic.gate` asserts this.
3. **Honest pricing.**  Every repair charges the shared
   :class:`~repro.runtime.ledger.TrafficLedger` under phase
   ``"dynamic"``, mirroring ``core/preprocessing.py``'s accounting: the
   delta arcs cross the network once (16 B each, alltoallv), the batch's
   endpoints take a degree/class pass, and each compaction streams the
   dirty components once.  :meth:`rebuild_cost_estimate` is the
   closed-form full-rebuild baseline
   (:func:`~repro.core.preprocessing.estimate_construction_seconds`);
   ``benchmarks/bench_dynamic_repair.py`` reports the ratio.

Metric families (all under the attached registry): ``dynamic_batches``,
``dynamic_updates_applied{kind}``, ``dynamic_class_migrations``,
``dynamic_arcs_migrated{component}``, ``dynamic_compactions{component}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.partition import (
    PartitionedGraph,
    classify_vertices,
    eh_placement,
    partition_graph,
    place_arcs,
)
from repro.core.preprocessing import estimate_construction_seconds
from repro.core.subgraphs import COMPONENT_ORDER, arc_keys, merge_arc_delta
from repro.dynamic.updates import UpdateBatch
from repro.machine.costmodel import CollectiveKind, CostModel, NodeKernelRates
from repro.machine.network import MachineSpec
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.runtime.ledger import TrafficLedger
from repro.runtime.mesh import ProcessMesh

__all__ = ["GraphDelta", "IncrementalGraph", "RepairReport"]

_ARC_BYTES = 16  # packed (src, dst) on the wire, as in preprocessing


@dataclass(frozen=True)
class GraphDelta:
    """The exact structural change one batch produced.

    All arc arrays are *directed* (both directions of each undirected
    edge appear).  ``moved_*`` are surviving arcs whose (component,
    rank) placement changed because an endpoint was reclassified.
    """

    inserted_src: np.ndarray
    inserted_dst: np.ndarray
    deleted_src: np.ndarray
    deleted_dst: np.ndarray
    moved_src: np.ndarray
    moved_dst: np.ndarray
    #: Vertices whose E/H/L class changed this batch.
    class_changed: np.ndarray
    #: Vertices whose adjacency or placement changed in any way — the
    #: set result caching must treat as dirty.
    touched: np.ndarray

    @property
    def num_changed_arcs(self) -> int:
        return int(
            self.inserted_src.size + self.deleted_src.size + self.moved_src.size
        )

    def is_empty(self) -> bool:
        return self.num_changed_arcs == 0


@dataclass(frozen=True)
class RepairReport:
    """Cost account of one :meth:`IncrementalGraph.apply_batch`."""

    batch_index: int
    delta: GraphDelta
    num_inserted_edges: int
    num_deleted_edges: int
    num_class_changes: int
    num_arcs_moved: int
    #: Ledger seconds charged for this batch (including any compaction
    #: it triggered).
    seconds: float
    compacted: bool


@dataclass
class _Overlay:
    """Pending per-component arc delta (adds carry their rank)."""

    add_src: list = field(default_factory=list)
    add_dst: list = field(default_factory=list)
    add_rank: list = field(default_factory=list)
    drop_src: list = field(default_factory=list)
    drop_dst: list = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.add_src or self.drop_src)

    def num_pending(self) -> int:
        return sum(a.size for a in self.add_src) + sum(
            d.size for d in self.drop_src
        )


class IncrementalGraph:
    """A :class:`PartitionedGraph` kept live under an update stream.

    Construction partitions the base edge list with
    ``placement="stable"`` (required; see :mod:`repro.core.partition`).
    :meth:`apply_batch` ingests one :class:`UpdateBatch`;
    :meth:`graph` returns the up-to-date partition (forcing a pending
    compaction first); :meth:`rebuild_reference` builds the
    from-scratch partition of the current edge set for the gate.
    """

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_vertices: int,
        mesh: ProcessMesh,
        *,
        e_threshold: int,
        h_threshold: int,
        machine: MachineSpec | None = None,
        compact_every: int = 4,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
    ) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self.mesh = mesh
        self.num_vertices = int(num_vertices)
        self.e_threshold = int(e_threshold)
        self.h_threshold = int(h_threshold)
        self.compact_every = int(compact_every)
        self.metrics = metrics
        self.machine = (
            machine
            if machine is not None
            else (mesh.machine or MachineSpec(num_nodes=mesh.num_ranks))
        )
        self._rates = NodeKernelRates(chip=self.machine.chip)
        self.ledger = TrafficLedger(
            CostModel(self.machine), tracer=tracer, metrics=metrics
        )

        # Canonical live edge set, sorted by packed key (lo < hi).  The
        # base partition is built from the canonical set — duplicates in
        # the raw list would otherwise break the live-set invariant.
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        keep = src != dst
        lo = np.minimum(src[keep], dst[keep])
        hi = np.maximum(src[keep], dst[keep])
        keys = np.unique(lo * np.int64(num_vertices) + hi)
        self._edge_lo = keys // num_vertices
        self._edge_hi = keys % num_vertices

        self._part = partition_graph(
            self._edge_lo,
            self._edge_hi,
            num_vertices,
            mesh,
            e_threshold=e_threshold,
            h_threshold=h_threshold,
            placement="stable",
        )

        self._overlays = {name: _Overlay() for name in COMPONENT_ORDER}
        self._batches_since_compact = 0
        self.num_batches = 0

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(self._edge_lo.size)

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """The live canonical edge set ``(lo, hi)``, sorted by key."""
        return self._edge_lo.copy(), self._edge_hi.copy()

    def graph(self) -> PartitionedGraph:
        """The current partition; forces a pending compaction first."""
        if any(not o.is_empty() for o in self._overlays.values()):
            self._compact()
        return self._part

    def rebuild_reference(self) -> PartitionedGraph:
        """From-scratch stable partition of the live edge set (the gate's
        ground truth)."""
        return partition_graph(
            self._edge_lo,
            self._edge_hi,
            self.num_vertices,
            self.mesh,
            e_threshold=self.e_threshold,
            h_threshold=self.h_threshold,
            placement="stable",
        )

    def rebuild_cost_estimate(self) -> float:
        """Modeled seconds a full reconstruction would charge."""
        return estimate_construction_seconds(self._part, self.machine)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def apply_batch(self, batch: UpdateBatch) -> RepairReport:
        """Ingest one batch: reclassify, stage overlays, price the work."""
        n = self.num_vertices
        before_seconds = self.ledger.total_seconds
        live = arc_keys(self._edge_lo, self._edge_hi, n)

        ins = batch.op > 0
        ins_keys = np.unique(
            arc_keys(batch.src[ins], batch.dst[ins], n)
        )
        del_keys = np.unique(
            arc_keys(batch.src[~ins], batch.dst[~ins], n)
        )
        # Idempotent semantics: insert-of-present / delete-of-absent are
        # no-ops (matching updates.apply_updates).
        ins_keys = ins_keys[~_member(ins_keys, live)]
        del_keys = del_keys[_member(del_keys, live)]
        # A key both inserted and deleted in one batch cancels.
        both = np.intersect1d(ins_keys, del_keys, assume_unique=True)
        if both.size:
            ins_keys = np.setdiff1d(ins_keys, both, assume_unique=True)
            del_keys = np.setdiff1d(del_keys, both, assume_unique=True)

        ins_lo, ins_hi = ins_keys // n, ins_keys % n
        del_lo, del_hi = del_keys // n, del_keys % n

        # --- new degrees and classes ----------------------------------
        old_vclass = self._part.vclass
        old_eh_col = self._part.eh_col
        old_eh_row = self._part.eh_row
        degrees = self._part.degrees.copy()
        for ends in (ins_lo, ins_hi):
            np.add.at(degrees, ends, 1)
        for ends in (del_lo, del_hi):
            np.add.at(degrees, ends, -1)
        vclass = classify_vertices(
            degrees, e_threshold=self.e_threshold, h_threshold=self.h_threshold
        )
        changed = np.flatnonzero(vclass != old_vclass)
        e_ids, h_ids, eh_col, eh_row = eh_placement(
            vclass, degrees, self.mesh, placement="stable"
        )

        # --- the three directed-arc groups ----------------------------
        # inserted arcs place under the NEW metadata, deleted arcs are
        # located under the OLD, and surviving arcs incident to a
        # reclassified vertex are re-placed under both to find movers.
        ins_s, ins_d = _both_directions(ins_lo, ins_hi)
        del_s, del_d = _both_directions(del_lo, del_hi)

        ins_comp, ins_rank = place_arcs(
            ins_s, ins_d, vclass=vclass, eh_col=eh_col, eh_row=eh_row,
            mesh=self.mesh, num_vertices=n, placement="stable",
        )
        del_comp, _ = place_arcs(
            del_s, del_d, vclass=old_vclass, eh_col=old_eh_col,
            eh_row=old_eh_row, mesh=self.mesh, num_vertices=n,
            placement="stable",
        )

        if changed.size:
            changed_mask = np.zeros(n, dtype=bool)
            changed_mask[changed] = True
            # Surviving incident edges = (live - deleted) touching a
            # reclassified vertex; inserted edges are already placed new.
            surv = ~_member(live, del_keys)
            inc = surv & (
                changed_mask[self._edge_lo] | changed_mask[self._edge_hi]
            )
            cand_s, cand_d = _both_directions(
                self._edge_lo[inc], self._edge_hi[inc]
            )
            oc, orank = place_arcs(
                cand_s, cand_d, vclass=old_vclass, eh_col=old_eh_col,
                eh_row=old_eh_row, mesh=self.mesh, num_vertices=n,
                placement="stable",
            )
            nc, nrank = place_arcs(
                cand_s, cand_d, vclass=vclass, eh_col=eh_col, eh_row=eh_row,
                mesh=self.mesh, num_vertices=n, placement="stable",
            )
            moved = (oc != nc) | (orank != nrank)
            mov_s, mov_d = cand_s[moved], cand_d[moved]
            mov_old_comp = oc[moved]
            mov_new_comp, mov_new_rank = nc[moved], nrank[moved]
        else:
            mov_s = mov_d = np.array([], dtype=np.int64)
            mov_old_comp = mov_new_comp = mov_new_rank = np.array(
                [], dtype=np.int64
            )

        # --- stage the overlays ---------------------------------------
        names = list(COMPONENT_ORDER)
        for i, name in enumerate(names):
            ov = self._overlays[name]
            m = del_comp == i
            self._stage_drop(ov, del_s[m], del_d[m])
            m = mov_old_comp == i
            self._stage_drop(ov, mov_s[m], mov_d[m])
            m = ins_comp == i
            self._stage_add(ov, ins_s[m], ins_d[m], ins_rank[m])
            m = mov_new_comp == i
            self._stage_add(ov, mov_s[m], mov_d[m], mov_new_rank[m])

        # --- commit vertex metadata (pure functions of the new state) --
        self._part.degrees = degrees
        self._part.vclass = vclass
        self._part.e_ids = e_ids
        self._part.h_ids = h_ids
        self._part.eh_col = eh_col
        self._part.eh_row = eh_row
        eh_order = np.concatenate([e_ids, h_ids])
        mesh = self.mesh
        if eh_order.size:
            self._part.col_eh_counts = np.bincount(
                eh_col[eh_order], minlength=mesh.cols
            )
            self._part.row_eh_counts = np.bincount(
                eh_row[eh_order], minlength=mesh.rows
            )
        else:
            self._part.col_eh_counts = np.zeros(mesh.cols, np.int64)
            self._part.row_eh_counts = np.zeros(mesh.rows, np.int64)
        from repro.core.partition import VertexClass

        l_vertices = np.flatnonzero(vclass == VertexClass.L)
        self._part.l_per_rank = (
            np.bincount(
                mesh.owner_of(l_vertices, n), minlength=mesh.num_ranks
            )
            if l_vertices.size
            else np.zeros(mesh.num_ranks, np.int64)
        )

        # --- commit the edge set --------------------------------------
        new_keys = np.setdiff1d(
            np.union1d(live, ins_keys), del_keys, assume_unique=False
        )
        self._edge_lo, self._edge_hi = new_keys // n, new_keys % n

        # --- price the repair -----------------------------------------
        delta_arcs = int(ins_s.size + del_s.size + mov_s.size)
        self._charge_batch(
            batch, delta_arcs,
            np.concatenate([ins_rank, mov_new_rank])
            if (ins_rank.size or mov_new_rank.size)
            else np.array([], dtype=np.int64),
        )

        # --- metrics ---------------------------------------------------
        m = self.metrics
        m.counter("dynamic_batches").inc()
        m.counter("dynamic_updates_applied", kind="insert").inc(ins_keys.size)
        m.counter("dynamic_updates_applied", kind="delete").inc(del_keys.size)
        m.counter("dynamic_class_migrations").inc(changed.size)
        if mov_s.size:
            moved_counts = np.bincount(mov_new_comp, minlength=len(names))
            for i, name in enumerate(names):
                if moved_counts[i]:
                    m.counter("dynamic_arcs_migrated", component=name).inc(
                        int(moved_counts[i])
                    )

        # --- compaction cadence ---------------------------------------
        self.num_batches += 1
        self._batches_since_compact += 1
        compacted = False
        if self._batches_since_compact >= self.compact_every:
            self._compact()
            compacted = True

        touched = np.unique(
            np.concatenate([ins_s, del_s, mov_s, mov_d, changed])
        )
        delta = GraphDelta(
            inserted_src=ins_s,
            inserted_dst=ins_d,
            deleted_src=del_s,
            deleted_dst=del_d,
            moved_src=mov_s,
            moved_dst=mov_d,
            class_changed=changed,
            touched=touched,
        )
        return RepairReport(
            batch_index=self.num_batches - 1,
            delta=delta,
            num_inserted_edges=int(ins_keys.size),
            num_deleted_edges=int(del_keys.size),
            num_class_changes=int(changed.size),
            num_arcs_moved=int(mov_s.size),
            seconds=self.ledger.total_seconds - before_seconds,
            compacted=compacted,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _stage_add(self, ov: _Overlay, s, d, r) -> None:
        if s.size:
            ov.add_src.append(s)
            ov.add_dst.append(d)
            ov.add_rank.append(r)

    def _stage_drop(self, ov: _Overlay, s, d) -> None:
        """Stage dropped arcs, cancelling against pending (unmerged) adds.

        An arc still sitting in the overlay's add list is not in the
        frozen base, so dropping it means removing it from the pending
        adds, not asking the merge to drop it from the base.
        """
        if not s.size:
            return
        n = self.num_vertices
        drop = arc_keys(s, d, n)
        if ov.add_src:
            add_s = np.concatenate(ov.add_src)
            add_d = np.concatenate(ov.add_dst)
            add_r = np.concatenate(ov.add_rank)
            add_keys = arc_keys(add_s, add_d, n)
            cancel = _member(add_keys, np.sort(drop))
            if np.any(cancel):
                ov.add_src = [add_s[~cancel]]
                ov.add_dst = [add_d[~cancel]]
                ov.add_rank = [add_r[~cancel]]
                hit = _member(drop, np.sort(add_keys[cancel]))
                s, d = s[~hit], d[~hit]
        if s.size:
            ov.drop_src.append(s)
            ov.drop_dst.append(d)

    def _compact(self) -> None:
        """Merge every dirty component's overlay into its packed arrays."""
        per_rank_items = np.zeros(self.mesh.num_ranks, dtype=np.int64)
        dirty = 0
        for name in COMPONENT_ORDER:
            ov = self._overlays[name]
            if ov.is_empty():
                continue
            dirty += 1
            comp = self._part.components[name]
            merged = merge_arc_delta(
                comp,
                add_src=_cat(ov.add_src),
                add_dst=_cat(ov.add_dst),
                add_rank=_cat(ov.add_rank),
                drop_src=_cat(ov.drop_src),
                drop_dst=_cat(ov.drop_dst),
                num_vertices=self.num_vertices,
            )
            self._part.components[name] = merged
            # The merge streams the surviving arcs once plus the overlay.
            per_rank_items += merged.arcs_per_rank
            self.metrics.counter("dynamic_compactions", component=name).inc()
            self._overlays[name] = _Overlay()
        if dirty:
            rates = self._rates
            ws = self.machine.work_scale
            max_items = int(per_rank_items.max())
            self.ledger.charge_compute(
                "dynamic",
                "merge_components",
                per_rank_items,
                rates.kernel_time(max_items, rates.message_rate(), ws),
            )
        self._batches_since_compact = 0

    def _charge_batch(
        self, batch: UpdateBatch, delta_arcs: int, dest_ranks: np.ndarray
    ) -> None:
        """Price one batch: delta alltoallv + reclassify pass.

        Mirrors preprocessing's accounting: every changed arc crosses the
        network once at 16 B (an alltoallv of only the delta), and the
        batch endpoints take one degree/class kernel pass.
        """
        rates = self._rates
        ws = self.machine.work_scale
        p = self.mesh.num_ranks
        if delta_arcs:
            per_rank = np.bincount(dest_ranks, minlength=p).astype(np.float64)
            max_send = float(per_rank.max(initial=0.0)) * _ARC_BYTES
            # Movers also leave their old rank; count both directions of
            # the wire but keep the balanced 50/50 intra/inter split the
            # closed-form rebuild estimate uses.
            self.ledger.charge_collective(
                "dynamic",
                CollectiveKind.ALLTOALLV,
                p,
                max_bytes_intra=max_send * 0.5,
                max_bytes_inter=max_send * 0.5,
                total_bytes=float(delta_arcs * _ARC_BYTES),
            )
        batch_items = max(int(batch.size), 1)
        per_node = np.full(p, -(-batch_items // p), dtype=np.int64)
        self.ledger.charge_compute(
            "dynamic",
            "reclassify",
            per_node,
            rates.kernel_time(
                -(-batch_items // p), rates.message_rate(), ws
            ),
        )


def _both_directions(lo: np.ndarray, hi: np.ndarray):
    """Directed arc arrays for undirected edges: (lo,hi) then (hi,lo)."""
    return (
        np.concatenate([lo, hi]).astype(np.int64),
        np.concatenate([hi, lo]).astype(np.int64),
    )


def _member(keys: np.ndarray, sorted_set: np.ndarray) -> np.ndarray:
    """Boolean membership of ``keys`` in a sorted key array."""
    if sorted_set.size == 0 or keys.size == 0:
        return np.zeros(keys.size, dtype=bool)
    pos = np.searchsorted(sorted_set, keys)
    pos[pos == sorted_set.size] = sorted_set.size - 1
    return sorted_set[pos] == keys


def _cat(parts: list) -> np.ndarray:
    return (
        np.concatenate(parts) if parts else np.array([], dtype=np.int64)
    )
