"""The batched edge-update log: seeded deterministic update streams.

An update stream is a sequence of :class:`UpdateBatch` objects over an
evolving *canonical* undirected edge set: endpoints ordered ``lo < hi``,
self loops dropped, duplicates collapsed.  Canonical form is what makes
deletion well-defined (there is exactly one copy of ``{u, v}`` to
delete) and what makes the incremental-vs-rebuild equivalence gate
meaningful (both sides partition the identical edge set).

Streams are generated, not recorded: :func:`generate_update_stream`
draws inserts and deletes from a seeded RNG *against the live edge set*,
so every delete targets an edge that exists at that point of the stream
and every insert targets a pair that does not.  The same
``(base graph, spec)`` always produces the same stream — that is what
lets the CLI smoke gate, the tests, and the benchmark all replay
identical histories.

Edge weights under churn: position-indexed weight arrays (the static
:func:`~repro.core.programs.sssp.generate_weights`) shift when the edge
list changes, which would make an incremental SSSP diverge from a
rebuild for reasons that have nothing to do with the repair.
:func:`weights_for_edges` instead hashes the endpoint *content*
(splitmix64 of the canonical pair plus a seed), so an edge's weight is a
pure function of its identity and survives any insertion order.

The spec grammar (``parse_update_spec``) is the CLI surface::

    KIND[:key=value[,key=value...]]

    KIND    insert | delete | mixed
    keys    batches=<int >=1>   number of batches       (default 4)
            size=<int >=1>      updates per batch       (default 64)
            frac=<float 0..1>   insert fraction, mixed  (default 0.5)

Examples: ``insert``, ``delete:batches=2,size=128``,
``mixed:batches=8,size=32,frac=0.25``.  Malformed specs raise
:class:`UpdateSpecError`; the CLI maps that to exit code 2 with usage,
matching the ``chaos``/``algo`` convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import mix64

__all__ = [
    "UpdateBatch",
    "UpdateSpec",
    "UpdateSpecError",
    "apply_updates",
    "canonical_edges",
    "generate_update_stream",
    "parse_update_spec",
    "weights_for_edges",
]

#: Spec kinds understood by the generator.
UPDATE_KINDS = ("insert", "delete", "mixed")


class UpdateSpecError(ValueError):
    """A malformed ``--updates`` spec (CLI maps this to exit code 2)."""


@dataclass(frozen=True)
class UpdateSpec:
    """Parsed form of one update-stream spec."""

    kind: str
    batches: int = 4
    size: int = 64
    #: Insert fraction for ``mixed`` streams (inserts per batch =
    #: ``round(size * frac)``, the rest deletes).
    frac: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in UPDATE_KINDS:
            raise UpdateSpecError(
                f"unknown update kind {self.kind!r}; expected one of "
                f"{', '.join(UPDATE_KINDS)}"
            )
        if self.batches < 1:
            raise UpdateSpecError("batches must be >= 1")
        if self.size < 1:
            raise UpdateSpecError("size must be >= 1")
        if not 0.0 <= self.frac <= 1.0:
            raise UpdateSpecError("frac must be in [0, 1]")


def parse_update_spec(spec: str) -> UpdateSpec:
    """Parse ``KIND[:key=value,...]`` into an :class:`UpdateSpec`.

    Raises :class:`UpdateSpecError` on any malformed input.
    """
    spec = spec.strip()
    if not spec:
        raise UpdateSpecError("empty update spec")
    kind, _, rest = spec.partition(":")
    kind = kind.strip()
    kwargs: dict[str, object] = {}
    if rest:
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not eq or not key or not value:
                raise UpdateSpecError(
                    f"malformed spec item {item!r}; expected key=value"
                )
            try:
                if key in ("batches", "size"):
                    kwargs[key] = int(value)
                elif key == "frac":
                    kwargs[key] = float(value)
                else:
                    raise UpdateSpecError(
                        f"unknown spec key {key!r}; expected batches, "
                        f"size or frac"
                    )
            except ValueError as exc:
                if isinstance(exc, UpdateSpecError):
                    raise
                raise UpdateSpecError(
                    f"bad value for {key!r}: {value!r}"
                ) from exc
    return UpdateSpec(kind=kind, **kwargs)


@dataclass(frozen=True)
class UpdateBatch:
    """One batch of undirected edge updates.

    ``src``/``dst`` are canonical endpoints (``src < dst``); ``op`` is
    ``+1`` for insert and ``-1`` for delete, aligned with them.
    """

    src: np.ndarray
    dst: np.ndarray
    op: np.ndarray

    @property
    def size(self) -> int:
        return int(self.op.size)

    @property
    def num_inserts(self) -> int:
        return int(np.count_nonzero(self.op > 0))

    @property
    def num_deletes(self) -> int:
        return int(np.count_nonzero(self.op < 0))


def _edge_keys(lo: np.ndarray, hi: np.ndarray, num_vertices: int) -> np.ndarray:
    return lo.astype(np.int64) * np.int64(num_vertices) + hi.astype(np.int64)


def canonical_edges(
    src: np.ndarray, dst: np.ndarray, num_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Canonicalize an undirected edge list: ``lo < hi``, no self loops,
    no duplicates, sorted by packed key.  The fixed order makes the
    canonical arrays themselves comparable across histories."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    keep = src != dst
    lo = np.minimum(src[keep], dst[keep])
    hi = np.maximum(src[keep], dst[keep])
    keys = np.unique(_edge_keys(lo, hi, num_vertices))
    return keys // num_vertices, keys % num_vertices


def apply_updates(
    lo: np.ndarray,
    hi: np.ndarray,
    batch: UpdateBatch,
    num_vertices: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply one batch to a canonical edge set, returning the new set.

    Inserting an edge that exists and deleting one that does not are
    no-ops — the same idempotent semantics
    :class:`~repro.dynamic.repair.IncrementalGraph` uses, so the gate's
    from-scratch side tracks the incremental side exactly.
    """
    keys = _edge_keys(lo, hi, num_vertices)
    ins = batch.op > 0
    add = np.unique(_edge_keys(batch.src[ins], batch.dst[ins], num_vertices))
    drop = np.unique(
        _edge_keys(batch.src[~ins], batch.dst[~ins], num_vertices)
    )
    keys = np.union1d(keys, add)
    keys = np.setdiff1d(keys, drop, assume_unique=True)
    return keys // num_vertices, keys % num_vertices


def weights_for_edges(
    src: np.ndarray, dst: np.ndarray, num_vertices: int, *, seed: int = 2
) -> np.ndarray:
    """Content-hashed uniform [0, 1) weights, one per undirected edge.

    ``w({u, v})`` depends only on the canonical pair and the seed — not
    on the edge's position in any list — so incremental repair and
    from-scratch rebuild see identical weights.  Usable directly as the
    ``weight_of`` callable of the SSSP programs.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    key = _edge_keys(np.minimum(src, dst), np.maximum(src, dst), num_vertices)
    h = mix64(mix64(key.astype(np.uint64)) + np.uint64(seed))
    # 53 high-quality bits -> float64 in [0, 1).
    return (h >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)


def generate_update_stream(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    spec: UpdateSpec,
    *,
    seed: int = 7,
) -> list[UpdateBatch]:
    """Generate a deterministic update stream against a base graph.

    Deletes are drawn (without replacement, per batch) from the edges
    *live at that point of the stream*; inserts are drawn from pairs not
    currently present.  The stream is a pure function of
    ``(base edges, num_vertices, spec, seed)``.
    """
    rng = np.random.default_rng(seed)
    lo, hi = canonical_edges(src, dst, num_vertices)
    live = _edge_keys(lo, hi, num_vertices)

    if spec.kind == "insert":
        per_batch = [(spec.size, 0)] * spec.batches
    elif spec.kind == "delete":
        per_batch = [(0, spec.size)] * spec.batches
    else:
        n_ins = int(round(spec.size * spec.frac))
        per_batch = [(n_ins, spec.size - n_ins)] * spec.batches

    batches = []
    for n_ins, n_del in per_batch:
        ins_keys = _draw_absent_pairs(rng, live, num_vertices, n_ins)
        n_del_eff = min(n_del, live.size)
        del_keys = (
            np.sort(rng.choice(live, size=n_del_eff, replace=False))
            if n_del_eff
            else np.array([], dtype=np.int64)
        )
        b_keys = np.concatenate([ins_keys, del_keys])
        op = np.concatenate(
            [
                np.ones(ins_keys.size, dtype=np.int8),
                -np.ones(del_keys.size, dtype=np.int8),
            ]
        )
        batches.append(
            UpdateBatch(
                src=b_keys // num_vertices,
                dst=b_keys % num_vertices,
                op=op,
            )
        )
        live = np.setdiff1d(
            np.union1d(live, ins_keys), del_keys, assume_unique=False
        )
    return batches


def _draw_absent_pairs(
    rng: np.random.Generator,
    live: np.ndarray,
    num_vertices: int,
    count: int,
) -> np.ndarray:
    """``count`` distinct canonical pair keys not present in ``live``."""
    if count == 0:
        return np.array([], dtype=np.int64)
    picked: list[np.ndarray] = []
    have = 0
    # Rejection sampling; each round draws with slack, so a couple of
    # rounds suffice unless the graph is nearly complete.
    for _ in range(64):
        need = count - have
        a = rng.integers(0, num_vertices, size=2 * need + 8, dtype=np.int64)
        b = rng.integers(0, num_vertices, size=2 * need + 8, dtype=np.int64)
        keep = a != b
        keys = _edge_keys(
            np.minimum(a[keep], b[keep]), np.maximum(a[keep], b[keep]),
            num_vertices,
        )
        keys = np.unique(keys)
        pos = np.searchsorted(live, keys)
        pos[pos == live.size] = live.size - 1 if live.size else 0
        absent = keys[live[pos] != keys] if live.size else keys
        if picked:
            existing = np.concatenate(picked)
            absent = np.setdiff1d(absent, existing, assume_unique=True)
        picked.append(absent[: count - have])
        have += picked[-1].size
        if have >= count:
            break
    else:
        raise RuntimeError(
            f"could not draw {count} absent pairs over n={num_vertices}; "
            f"graph too dense for the requested insert volume"
        )
    return np.sort(np.concatenate(picked))
