"""Per-iteration timeline diagnostics for a BFS run.

The figures aggregate over whole runs; when *tuning* (thresholds, direction
biases) you want to see where each iteration's time went and which
direction each component chose.  :func:`render_timeline` turns one
:class:`~repro.core.metrics.BFSRunResult` into a compact text matrix:

```
iter  frontier   EH2EH     E2L   ...     L2L   | iteration total
   0         1   push .   push .         push .| 1.2 us
   2    140817   PULL #   push :         PULL #| 8.7 us
```

One cell per (iteration, component): the direction (upper-case when the
component dominated that iteration) and a density glyph for its share of
the iteration's compute+message time.

Two data paths feed the matrix.  Without a trace, per-iteration seconds
are *apportioned* from the ledger's phase totals by scanned-arc weight
(:func:`iteration_component_seconds` — the historical ad-hoc
accounting).  With a :class:`~repro.obs.tracer.Tracer` from a traced run,
the seconds are *exact*: every ledger charge is a leaf span under its
iteration/component span, so :func:`iteration_component_seconds_from_trace`
just sums subtrees.  The same span tree also reproduces the figure
aggregates — :func:`phase_seconds_from_trace` (Fig. 10) and
:func:`category_seconds_from_trace` (Fig. 11) match the ledger's
``seconds_by_phase`` / ``time_by_category`` groupings.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.reporting import format_seconds
from repro.core.metrics import BFSRunResult
from repro.core.subgraphs import COMPONENT_ORDER

__all__ = [
    "iteration_component_seconds",
    "iteration_component_seconds_from_trace",
    "phase_seconds_from_trace",
    "category_seconds_from_trace",
    "render_timeline",
]

#: Leaf-span categories emitted by ledger charges.
_LEAF_CATEGORIES = ("collective", "kernel")

_GLYPHS = " .:=#"


def iteration_component_seconds(result: BFSRunResult) -> list[dict[str, float]]:
    """Seconds per component per iteration, reconstructed from the ledger.

    Ledger events are appended in execution order, so they are replayed
    against the iteration trace: each iteration consumes the events its
    sub-iterations generated (delegate syncs and the final reduction are
    assigned to ``other``/``reduce`` buckets of the nearest iteration).
    """
    per_iter: list[dict[str, float]] = [
        defaultdict(float) for _ in result.iterations
    ]
    if not result.iterations:
        return []
    # Walk compute and comm events in order; iteration boundaries are
    # inferred from the per-iteration scanned-arc trace: every component
    # event belongs to the iteration whose record mentions it next.
    events = [
        (e.phase, e.seconds) for e in result.ledger.compute_events
    ] + [(e.phase, e.seconds) for e in result.ledger.comm_events]
    # Without per-event iteration tags we apportion each phase's total
    # over iterations by that phase's scanned-arc (or message) weight.
    phase_totals: dict[str, float] = defaultdict(float)
    for phase, seconds in events:
        phase_totals[phase] += seconds
    for phase, total in phase_totals.items():
        if phase in ("other", "reduce"):
            # spread uniformly (sync happens every iteration; the final
            # reduce is charged to the last)
            if phase == "reduce":
                per_iter[-1][phase] += total
            else:
                share = total / len(per_iter)
                for row in per_iter:
                    row[phase] += share
            continue
        weights = []
        for rec in result.iterations:
            w = rec.scanned_arcs.get(phase, 0) + rec.messages.get(phase, 0)
            weights.append(float(w))
        wsum = sum(weights)
        if wsum <= 0:
            weights = [1.0] * len(per_iter)
            wsum = float(len(per_iter))
        for row, w in zip(per_iter, weights):
            row[phase] += total * w / wsum
    return [dict(row) for row in per_iter]


def _ledger_leaves(tracer):
    """Ledger-charge leaf spans, each with its ancestor chain resolved."""
    by_sid = {sp.sid: sp for sp in tracer.spans}
    for sp in tracer.spans:
        if sp.category not in _LEAF_CATEGORIES or not sp.closed:
            continue
        ancestors = []
        cursor = sp
        while cursor.parent is not None:
            cursor = by_sid[cursor.parent]
            ancestors.append(cursor)
        yield sp, ancestors


def phase_seconds_from_trace(tracer) -> dict[str, float]:
    """Fig. 10 grouping from spans: phase tag -> simulated seconds.

    Sums every ledger-charge leaf by its ``phase`` attr; equals the
    ledger's :meth:`~repro.runtime.ledger.TrafficLedger.seconds_by_phase`
    for the traced run(s).
    """
    acc: dict[str, float] = defaultdict(float)
    for sp, _ in _ledger_leaves(tracer):
        phase = sp.attrs.get("phase")
        if phase is not None:
            acc[phase] += sp.sim_seconds
    return dict(acc)


def category_seconds_from_trace(tracer) -> dict[str, float]:
    """Fig. 11 grouping from spans: compute / imbalance / collective kind.

    Mirrors :meth:`~repro.core.metrics.BFSRunResult.time_by_category`:
    kernel leaves split into pure compute and their recorded imbalance;
    collective leaves group by their ``kind`` attr.
    """
    out: dict[str, float] = {"compute": 0.0, "imbalance/latency": 0.0}
    for sp, _ in _ledger_leaves(tracer):
        if sp.category == "kernel":
            imbalance = sp.counters.get("imbalance_seconds", 0.0)
            out["compute"] += sp.sim_seconds - imbalance
            out["imbalance/latency"] += imbalance
        else:
            kind = sp.attrs.get("kind", "collective")
            out[kind] = out.get(kind, 0.0) + sp.sim_seconds
    return out


def iteration_component_seconds_from_trace(tracer) -> list[dict[str, float]]:
    """Exact per-iteration component seconds from a traced run's spans.

    Each ledger-charge leaf is assigned to the component span it executed
    under (or, for delegate syncs and reductions, to its phase bucket
    within the enclosing iteration).  End-of-run charges outside any
    iteration — the §5 delayed parent reduction — land on the last
    iteration, matching :func:`iteration_component_seconds`.  When the
    tracer holds several BFS runs, iterations concatenate in run order.
    """
    iteration_index: dict[int, int] = {}  # iteration span sid -> row
    rows: list[dict[str, float]] = []
    for sp in tracer.spans:
        if sp.category == "iteration":
            iteration_index[sp.sid] = len(rows)
            rows.append(defaultdict(float))
    if not rows:
        return []
    for sp, ancestors in _ledger_leaves(tracer):
        component = next(
            (a.name for a in ancestors if a.category == "component"), None
        )
        iter_sid = next(
            (a.sid for a in ancestors if a.category == "iteration"), None
        )
        key = component or sp.attrs.get("phase", "other")
        if iter_sid is not None:
            rows[iteration_index[iter_sid]][key] += sp.sim_seconds
        else:
            rows[-1][key] += sp.sim_seconds  # delayed reduction et al.
    return [dict(row) for row in rows]


def render_timeline(result: BFSRunResult, tracer=None) -> str:
    """Text matrix: iterations x components with direction + time share.

    With ``tracer`` from the traced run, cell times are exact span sums;
    otherwise they are apportioned from the ledger (the pre-trace
    behaviour).  A tracer whose iteration count disagrees with the
    result (e.g. it traced other runs too) falls back to apportioning.
    """
    rows = None
    if tracer is not None:
        traced = iteration_component_seconds_from_trace(tracer)
        if len(traced) == len(result.iterations):
            rows = traced
    if rows is None:
        rows = iteration_component_seconds(result)
    header = (
        "iter  frontier  "
        + "  ".join(f"{name:>7s}" for name in COMPONENT_ORDER)
        + "  | iteration total"
    )
    out = [header, "-" * len(header)]
    for rec, row in zip(result.iterations, rows):
        total = sum(row.values()) or 1e-30
        cells = []
        for name in COMPONENT_ORDER:
            seconds = row.get(name, 0.0)
            share = seconds / total
            glyph = _GLYPHS[min(int(share * len(_GLYPHS)), len(_GLYPHS) - 1)]
            direction = rec.directions.get(name, "-")
            label = {"push": "push", "pull": "pull", "-": "  - "}[direction]
            if share >= 0.5:
                label = label.upper()
            cells.append(f"{label} {glyph}")
        out.append(
            f"{rec.index:4d}  {rec.frontier_size:8d}  "
            + "  ".join(f"{c:>7s}" for c in cells)
            + f"  | {format_seconds(total)}"
        )
    return "\n".join(out)
