"""Per-iteration timeline diagnostics for a BFS run.

The figures aggregate over whole runs; when *tuning* (thresholds, direction
biases) you want to see where each iteration's time went and which
direction each component chose.  :func:`render_timeline` turns one
:class:`~repro.core.metrics.BFSRunResult` into a compact text matrix:

```
iter  frontier   EH2EH     E2L   ...     L2L   | iteration total
   0         1   push .   push .         push .| 1.2 us
   2    140817   PULL #   push :         PULL #| 8.7 us
```

One cell per (iteration, component): the direction (upper-case when the
component dominated that iteration) and a density glyph for its share of
the iteration's compute+message time.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.reporting import format_seconds
from repro.core.metrics import BFSRunResult
from repro.core.subgraphs import COMPONENT_ORDER

__all__ = ["iteration_component_seconds", "render_timeline"]

_GLYPHS = " .:=#"


def iteration_component_seconds(result: BFSRunResult) -> list[dict[str, float]]:
    """Seconds per component per iteration, reconstructed from the ledger.

    Ledger events are appended in execution order, so they are replayed
    against the iteration trace: each iteration consumes the events its
    sub-iterations generated (delegate syncs and the final reduction are
    assigned to ``other``/``reduce`` buckets of the nearest iteration).
    """
    per_iter: list[dict[str, float]] = [
        defaultdict(float) for _ in result.iterations
    ]
    if not result.iterations:
        return []
    # Walk compute and comm events in order; iteration boundaries are
    # inferred from the per-iteration scanned-arc trace: every component
    # event belongs to the iteration whose record mentions it next.
    events = [
        (e.phase, e.seconds) for e in result.ledger.compute_events
    ] + [(e.phase, e.seconds) for e in result.ledger.comm_events]
    # Without per-event iteration tags we apportion each phase's total
    # over iterations by that phase's scanned-arc (or message) weight.
    phase_totals: dict[str, float] = defaultdict(float)
    for phase, seconds in events:
        phase_totals[phase] += seconds
    for phase, total in phase_totals.items():
        if phase in ("other", "reduce"):
            # spread uniformly (sync happens every iteration; the final
            # reduce is charged to the last)
            if phase == "reduce":
                per_iter[-1][phase] += total
            else:
                share = total / len(per_iter)
                for row in per_iter:
                    row[phase] += share
            continue
        weights = []
        for rec in result.iterations:
            w = rec.scanned_arcs.get(phase, 0) + rec.messages.get(phase, 0)
            weights.append(float(w))
        wsum = sum(weights)
        if wsum <= 0:
            weights = [1.0] * len(per_iter)
            wsum = float(len(per_iter))
        for row, w in zip(per_iter, weights):
            row[phase] += total * w / wsum
    return [dict(row) for row in per_iter]


def render_timeline(result: BFSRunResult) -> str:
    """Text matrix: iterations x components with direction + time share."""
    rows = iteration_component_seconds(result)
    header = (
        "iter  frontier  "
        + "  ".join(f"{name:>7s}" for name in COMPONENT_ORDER)
        + "  | iteration total"
    )
    out = [header, "-" * len(header)]
    for rec, row in zip(result.iterations, rows):
        total = sum(row.values()) or 1e-30
        cells = []
        for name in COMPONENT_ORDER:
            seconds = row.get(name, 0.0)
            share = seconds / total
            glyph = _GLYPHS[min(int(share * len(_GLYPHS)), len(_GLYPHS) - 1)]
            direction = rec.directions.get(name, "-")
            label = {"push": "push", "pull": "pull", "-": "  - "}[direction]
            if share >= 0.5:
                label = label.upper()
            cells.append(f"{label} {glyph}")
        out.append(
            f"{rec.index:4d}  {rec.frontier_size:8d}  "
            + "  ".join(f"{c:>7s}" for c in cells)
            + f"  | {format_seconds(total)}"
        )
    return "\n".join(out)
