"""Experiment drivers: one entry point per paper table/figure.

Each function builds the workload, runs the engines, and returns plain
data (rows / series) that the benchmark harness prints and the examples
reuse.  Scales are laptop-feasible; machines use the work-scale
extrapolation (DESIGN.md §2) so fixed overheads are priced as they would
be at paper-scale per-node work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import DelegatedOneDimBFS, OneDimBFS, TwoDimBFS
from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.core.metrics import BFSRunResult
from repro.core.partition import PartitionedGraph
from repro.graph500.rmat import generate_edges
from repro.graphs.stats import degree_histogram, degrees_from_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh

__all__ = [
    "ExperimentSetup",
    "ScalingPoint",
    "build_setup",
    "tuned_thresholds",
    "run_15d",
    "run_partition_comparison",
    "run_scaling_sweep",
    "run_threshold_grid",
    "run_ablation",
]

#: Default weak-scaling ladder: (scale, rows, cols) with constant
#: per-rank work (paper Fig. 9 uses 256..103912 nodes at SCALE 35..44).
DEFAULT_LADDER = ((12, 4, 4), (14, 8, 8), (16, 16, 16), (18, 32, 32))


def tuned_thresholds(scale: int) -> tuple[int, int]:
    """(e_threshold, h_threshold) tuned per SCALE.

    Mirrors §6.2.1: thresholds sit in the valleys between degree-
    distribution peaks, and the H threshold rises with machine scale to
    bound the per-column delegate population.  Values picked by the same
    grid search the Fig. 12 bench performs, at small SCALE.
    """
    if scale <= 13:
        return 1024, 128
    if scale <= 15:
        return 2048, 256
    if scale <= 17:
        return 4096, 512
    if scale <= 19:
        return 4096, 512
    return 8192, 1024


@dataclass
class ExperimentSetup:
    """A generated workload bound to a simulated machine and mesh."""

    scale: int
    src: np.ndarray
    dst: np.ndarray
    num_vertices: int
    mesh: ProcessMesh
    machine: MachineSpec
    root: int

    @property
    def num_edges(self) -> int:
        return int(self.src.size)


def build_setup(
    scale: int,
    rows: int,
    cols: int,
    *,
    seed: int = 1,
    supernode_rows: bool = True,
    root_kind: str = "hub",
) -> ExperimentSetup:
    """Generate a Graph500 workload on an ``rows x cols`` simulated mesh.

    ``supernode_rows=True`` sizes supernodes to one mesh row (the paper's
    topology mapping).  ``root_kind`` is ``"hub"`` (max degree, the dense
    regime) or ``"random"`` (Graph500's sampling).
    """
    src, dst = generate_edges(scale, seed=seed)
    n = 1 << scale
    p = rows * cols
    machine = MachineSpec(
        num_nodes=p,
        nodes_per_supernode=cols if supernode_rows else min(256, p),
    ).scaled_for(src.size / p)
    mesh = ProcessMesh(rows, cols, machine=machine)
    degrees = degrees_from_edges(src, dst, n)
    if root_kind == "hub":
        root = int(np.argmax(degrees))
    else:
        rng = np.random.default_rng(seed + 1)
        root = int(rng.choice(np.flatnonzero(degrees > 0)))
    return ExperimentSetup(scale, src, dst, n, mesh, machine, root)


def run_15d(
    setup: ExperimentSetup,
    *,
    e_threshold: int | None = None,
    h_threshold: int | None = None,
    config_overrides: dict | None = None,
    tracer=None,
    metrics=None,
    faults=None,
    checkpoint_every: int = 0,
    max_restarts: int = 3,
    recovery_mode: str = "restart",
    backend=None,
) -> tuple[PartitionedGraph, BFSRunResult]:
    """Partition + run the 1.5D engine once; returns (partition, result).

    ``tracer`` (a :class:`~repro.obs.tracer.Tracer`) records the run's
    span tree for the Fig. 10/11 aggregations in
    :mod:`repro.analysis.timeline`; ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) accumulates the
    aggregate metric families.

    ``faults`` (a spec string, :class:`~repro.resilience.faults.FaultPlan`
    or ready injector) plus ``checkpoint_every``/``max_restarts``/
    ``recovery_mode`` run the BFS under
    :func:`repro.resilience.recovery.run_with_recovery`; the recovery
    accounting is attached to the result as ``result.resilient``
    (a :class:`~repro.resilience.recovery.ResilientRunResult`).
    """
    if e_threshold is None or h_threshold is None:
        e_threshold, h_threshold = tuned_thresholds(setup.scale)
    part = partition_graph(
        setup.src,
        setup.dst,
        setup.num_vertices,
        setup.mesh,
        e_threshold=e_threshold,
        h_threshold=h_threshold,
    )
    kwargs = dict(e_threshold=e_threshold, h_threshold=h_threshold)
    kwargs.update(config_overrides or {})
    engine = DistributedBFS(
        part, machine=setup.machine, config=BFSConfig(**kwargs), tracer=tracer,
        metrics=metrics, backend=backend,
    )
    if faults is None and not checkpoint_every:
        return part, engine.run(setup.root)

    from repro.resilience import (
        FaultInjector,
        LevelCheckpointer,
        RecoveryPolicy,
        run_with_recovery,
    )

    injector = None
    if faults is not None:
        injector = (
            faults
            if isinstance(faults, FaultInjector)
            else FaultInjector(faults, rng=np.random.default_rng(setup.scale))
        )
        injector.plan.validate(setup.mesh.num_ranks)
    recovered = run_with_recovery(
        engine,
        setup.root,
        faults=injector if injector is not None else None,
        checkpointer=LevelCheckpointer(every=checkpoint_every, mesh=setup.mesh),
        policy=RecoveryPolicy(max_restarts=max_restarts, mode=recovery_mode),
    )
    result = recovered.result
    result.resilient = recovered
    return part, result


# ----------------------------------------------------------------------
# Table 1: partitioning methods compared on equal footing
# ----------------------------------------------------------------------


def _delegate_state_bytes(scheme: str, engine_or_part, mesh) -> float:
    """Per-node delegate state (bits + 8-byte parents) a scheme maintains.

    This is the §2.3 scalability-wall metric Table 1's history reflects.
    """
    if scheme == "1D":
        return 0.0
    if scheme == "1D+delegates":
        return engine_or_part.num_heavy * 8.125
    if scheme == "2D":
        n = engine_or_part.num_vertices
        per_rank = mesh.block_size(n)
        return (per_rank * mesh.rows + per_rank * mesh.cols) * 8.125
    # 1.5D: global E + column/row EH delegate state
    part = engine_or_part
    return (
        part.num_e
        + int(part.col_eh_counts.max(initial=0))
        + int(part.row_eh_counts.max(initial=0))
    ) * 8.125


def run_partition_comparison(
    points: tuple[tuple[int, int, int], ...] = DEFAULT_LADDER, *, seed: int = 1
) -> list[dict]:
    """All four partitioning methods across the weak-scaling ladder.

    Returns one row per (point, method): simulated GTEPS, per-node
    delegate state, communicated bytes.  The paper-shaped expectation:
    vanilla 1D trails everywhere; 1D+delegates in between; 2D competitive
    at small meshes but its sync volume and delegate state grow ~sqrt(P);
    1.5D leads at the largest point with the smallest delegate state.
    """
    rows_out = []
    for scale, rows, cols in points:
        setup = build_setup(scale, rows, cols, seed=seed)
        for cls in (OneDimBFS, DelegatedOneDimBFS, TwoDimBFS):
            engine = cls(
                setup.src, setup.dst, setup.num_vertices, setup.mesh,
                machine=setup.machine,
            )
            res = engine.run(setup.root)
            rows_out.append(
                {
                    "nodes": rows * cols,
                    "scale": scale,
                    "method": cls.scheme,
                    "gteps": setup.num_edges / res.total_seconds / 1e9,
                    "delegate_bytes_per_node": _delegate_state_bytes(
                        cls.scheme, engine, setup.mesh
                    ),
                    "comm_bytes": res.ledger.total_bytes,
                }
            )
        part, res = run_15d(setup)
        rows_out.append(
            {
                "nodes": rows * cols,
                "scale": scale,
                "method": "1.5D (ours)",
                "gteps": setup.num_edges / res.total_seconds / 1e9,
                "delegate_bytes_per_node": _delegate_state_bytes(
                    "1.5D", part, setup.mesh
                ),
                "comm_bytes": res.ledger.total_bytes,
            }
        )
    return rows_out


# ----------------------------------------------------------------------
# Figures 9/10/11: weak scaling and its breakdowns
# ----------------------------------------------------------------------


@dataclass
class ScalingPoint:
    """One weak-scaling measurement of the 1.5D engine."""

    nodes: int
    scale: int
    gteps: float
    seconds: float
    result: BFSRunResult = field(repr=False)
    partition: PartitionedGraph = field(repr=False)
    #: Span tree of the measured run (``trace=True`` sweeps only).
    trace: object = field(repr=False, default=None)


def run_scaling_sweep(
    points: tuple[tuple[int, int, int], ...] = DEFAULT_LADDER,
    *,
    seed: int = 1,
    num_roots: int = 1,
    trace: bool = False,
) -> list[ScalingPoint]:
    """Weak-scaling sweep of the full 1.5D engine (Fig. 9 data; the
    per-point results also carry Fig. 10/11 breakdowns).

    ``trace=True`` attaches a fresh :class:`~repro.obs.tracer.Tracer`
    per point so the figure benches can aggregate real spans instead of
    re-deriving breakdowns from the ledger.
    """
    from repro.obs.tracer import Tracer

    out = []
    for scale, rows, cols in points:
        tracer = Tracer() if trace else None
        setup = build_setup(scale, rows, cols, seed=seed)
        part, res = run_15d(setup, tracer=tracer)
        seconds = res.total_seconds
        if num_roots > 1:
            rng = np.random.default_rng(seed + 7)
            degrees = part.degrees
            candidates = np.flatnonzero(degrees > 0)
            engine = DistributedBFS(
                part,
                machine=setup.machine,
                config=BFSConfig(
                    e_threshold=part.e_threshold, h_threshold=part.h_threshold
                ),
            )
            times = [seconds]
            for root in rng.choice(candidates, num_roots - 1, replace=False):
                times.append(engine.run(int(root)).total_seconds)
            seconds = float(np.mean(times))
        out.append(
            ScalingPoint(
                nodes=rows * cols,
                scale=scale,
                gteps=setup.num_edges / seconds / 1e9,
                seconds=seconds,
                result=res,
                partition=part,
                trace=tracer,
            )
        )
    return out


# ----------------------------------------------------------------------
# Figure 12: threshold grid
# ----------------------------------------------------------------------


def run_threshold_grid(
    scale: int = 16,
    rows: int = 16,
    cols: int = 16,
    *,
    e_thresholds: tuple[int, ...] = (4096, 1024, 512, 128),
    h_thresholds: tuple[int, ...] = (1024, 512, 128, 32),
    seed: int = 1,
) -> list[dict]:
    """GTEPS over the (E, H) threshold grid.

    Cells with ``e < h`` are invalid (reported as 0.0, matching the
    zeroed cells of the paper's Fig. 12).
    """
    setup = build_setup(scale, rows, cols, seed=seed)
    out = []
    for e_thr in e_thresholds:
        for h_thr in h_thresholds:
            if e_thr < h_thr:
                out.append({"e": e_thr, "h": h_thr, "gteps": 0.0})
                continue
            _, res = run_15d(setup, e_threshold=e_thr, h_threshold=h_thr)
            out.append(
                {
                    "e": e_thr,
                    "h": h_thr,
                    "gteps": setup.num_edges / res.total_seconds / 1e9,
                }
            )
    return out


# ----------------------------------------------------------------------
# Figure 15: technique ablation
# ----------------------------------------------------------------------


def run_ablation(
    scale: int = 16, rows: int = 16, cols: int = 16, *, seed: int = 1
) -> list[tuple[str, dict]]:
    """Three optimization levels' time-by-direction breakdowns.

    (a) Baseline: whole-iteration direction, no segmenting;
    (b) + Sub-Iter.: sub-iteration direction, no segmenting;
    (c) + Segment.: both (the full system).
    """
    setup = build_setup(scale, rows, cols, seed=seed, root_kind="random")
    levels = [
        ("Baseline", dict(sub_iteration_direction=False, segmenting=False)),
        ("+ Sub-Iter.", dict(sub_iteration_direction=True, segmenting=False)),
        ("+ Segment.", dict(sub_iteration_direction=True, segmenting=True)),
    ]
    out = []
    for label, overrides in levels:
        _, res = run_15d(setup, config_overrides=overrides)
        out.append((label, res.time_by_direction()))
    return out
