"""Breakdown assembly for the stacked-share figures (10, 11, 15).

These helpers take per-run dictionaries (from
:class:`~repro.core.metrics.BFSRunResult`) and assemble them into the
series the paper plots: normalized time shares per category across a
scaling sweep, or absolute stacked bars across ablation levels.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["normalize_shares", "stack_series", "ablation_breakdown"]


def normalize_shares(breakdown: Mapping[str, float]) -> dict[str, float]:
    """Scale a category->seconds mapping to fractions summing to 1."""
    total = sum(breakdown.values())
    if total <= 0:
        return {k: 0.0 for k in breakdown}
    return {k: v / total for k, v in breakdown.items()}


def stack_series(
    points: Sequence[tuple[object, Mapping[str, float]]],
    *,
    normalize: bool = True,
) -> tuple[list[object], list[str], dict[str, list[float]]]:
    """Assemble per-point breakdowns into per-category series.

    ``points`` is ``[(x_label, {category: seconds}), ...]`` — e.g. one
    entry per node count in the scaling sweep.  Returns ``(x_labels,
    categories, series)`` where ``series[cat][i]`` is the share (or
    seconds) of ``cat`` at point ``i``; categories are ordered by their
    total contribution, largest first, and missing categories are 0.
    """
    x_labels = [x for x, _ in points]
    totals: dict[str, float] = {}
    for _, bd in points:
        for k, v in bd.items():
            totals[k] = totals.get(k, 0.0) + v
    categories = sorted(totals, key=lambda k: -totals[k])
    series: dict[str, list[float]] = {c: [] for c in categories}
    for _, bd in points:
        row = normalize_shares(bd) if normalize else dict(bd)
        for c in categories:
            series[c].append(float(row.get(c, 0.0)))
    return x_labels, categories, series


def ablation_breakdown(
    runs: Sequence[tuple[str, Mapping[str, float]]]
) -> tuple[list[str], list[str], dict[str, list[float]]]:
    """Fig. 15-style absolute stacked bars: one bar per ablation level.

    ``runs`` is ``[(level_label, time_by_direction_dict), ...]``.
    Categories keep the figure's canonical order when present.
    """
    canonical = ["EH2EH pull", "others pull", "EH2EH push", "others push", "other"]
    labels = [label for label, _ in runs]
    seen: list[str] = [c for c in canonical if any(c in bd for _, bd in runs)]
    for _, bd in runs:
        for k in bd:
            if k not in seen:
                seen.append(k)
    series = {c: [float(bd.get(c, 0.0)) for _, bd in runs] for c in seen}
    return labels, seen, series
