"""Plain-text rendering of experiment results.

The evaluation harness prints every table and figure as ASCII (and
optionally CSV) so results are inspectable in a terminal and diffable in
CI — no plotting dependency.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["ascii_table", "ascii_bar_chart", "format_seconds", "write_csv"]


def format_seconds(seconds: float) -> str:
    """Human-scaled time formatting (s / ms / us / ns)."""
    if seconds < 0:
        raise ValueError("seconds must be nonnegative")
    if seconds == 0:
        return "0 s"
    for unit, factor in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6)):
        if seconds >= factor:
            return f"{seconds / factor:.3g} {unit}"
    return f"{seconds / 1e-9:.3g} ns"


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as a boxed, column-aligned table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    out.append(sep)
    for row in str_rows:
        out.append(
            "| " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + " |"
        )
    out.append(sep)
    return "\n".join(out)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str | None = None,
    log: bool = False,
    unit: str = "",
) -> str:
    """Horizontal bar chart; ``log=True`` uses log10-scaled bar lengths
    (Figure 14 spans three decades)."""
    import math

    labels = list(labels)
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be nonnegative")
    out = []
    if title:
        out.append(title)
    if not values:
        return "\n".join(out + ["(empty)"])
    if log:
        floors = [math.log10(max(v, 1e-12)) for v in values]
        lo = min(floors) - 0.5
        hi = max(max(floors), lo + 1e-9)
        scaled = [(f - lo) / (hi - lo) for f in floors]
    else:
        peak = max(values) or 1.0
        scaled = [v / peak for v in values]
    lw = max(len(x) for x in labels)
    for label, value, s in zip(labels, values, scaled):
        bar = "#" * max(int(round(s * width)), 1 if value > 0 else 0)
        out.append(f"{label.rjust(lw)} | {bar} {value:.4g}{unit}")
    return "\n".join(out)


def write_csv(
    path: str | Path, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> Path:
    """Write rows to CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path
