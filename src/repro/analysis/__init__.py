"""Analysis and reporting: turning run metrics into the paper's figures.

- :mod:`repro.analysis.reporting` — ASCII tables, bar charts, and CSV
  writers (the benchmark harness has no plotting dependency).
- :mod:`repro.analysis.breakdown` — stacked time-share series over a
  scaling sweep (Figures 10/11) and ablation bars (Figure 15).
- :mod:`repro.analysis.experiments` — the high-level experiment drivers
  shared by the benchmarks and examples (one function per table/figure).
"""

from repro.analysis.breakdown import (
    ablation_breakdown,
    normalize_shares,
    stack_series,
)
from repro.analysis.reporting import (
    ascii_bar_chart,
    ascii_table,
    format_seconds,
    write_csv,
)
from repro.analysis.timeline import iteration_component_seconds, render_timeline

__all__ = [
    "iteration_component_seconds",
    "render_timeline",
    "ascii_table",
    "ascii_bar_chart",
    "format_seconds",
    "write_csv",
    "stack_series",
    "normalize_shares",
    "ablation_breakdown",
]
