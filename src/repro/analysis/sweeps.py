"""Parameter-sweep studies beyond the paper's own figures.

These drivers probe claims the paper makes in prose:

- :func:`run_oversubscription_sweep` — §6.1.1: "with our 3-level
  degree-aware 1.5D partitioning, we greatly reduce the network traffic
  crossing supernodes, avoiding the bottleneck in the top-level tree
  network".  Sweeping the fat-tree oversubscription factor quantifies
  that: 1.5D's time should be nearly flat in the oversubscription while
  2D (whose column syncs cross supernodes every iteration) and 1D (whose
  messages are global) degrade.
- :func:`run_strong_scaling` — fixed problem, growing mesh: the regime
  the paper does not show (it scales weakly); useful for downstream
  users sizing a machine for a fixed graph.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis.experiments import build_setup, run_15d, tuned_thresholds
from repro.baselines import DelegatedOneDimBFS, OneDimBFS, TwoDimBFS
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh

__all__ = ["run_oversubscription_sweep", "run_strong_scaling"]


def run_oversubscription_sweep(
    scale: int = 14,
    rows: int = 8,
    cols: int = 8,
    *,
    factors: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0),
    seed: int = 1,
) -> list[dict]:
    """Simulated time of each scheme vs fat-tree oversubscription.

    Returns one row per (factor, method) with the total seconds and the
    inter-supernode byte volume (which is method-determined and factor-
    independent — only its *price* changes).
    """
    setup = build_setup(scale, rows, cols, seed=seed)
    out = []
    for factor in factors:
        machine = replace(setup.machine, fat_tree_oversubscription=factor)
        mesh = ProcessMesh(rows, cols, machine=machine)
        for cls in (OneDimBFS, DelegatedOneDimBFS, TwoDimBFS):
            res = cls(
                setup.src, setup.dst, setup.num_vertices, mesh, machine=machine
            ).run(setup.root)
            out.append(
                {
                    "oversubscription": factor,
                    "method": cls.scheme,
                    "seconds": res.total_seconds,
                    "inter_bytes": _inter_bytes(res),
                }
            )
        from repro.core import BFSConfig, DistributedBFS, partition_graph

        e_thr, h_thr = tuned_thresholds(scale)
        part = partition_graph(
            setup.src, setup.dst, setup.num_vertices, mesh,
            e_threshold=e_thr, h_threshold=h_thr,
        )
        res = DistributedBFS(
            part, machine=machine,
            config=BFSConfig(e_threshold=e_thr, h_threshold=h_thr),
        ).run(setup.root)
        out.append(
            {
                "oversubscription": factor,
                "method": "1.5D (ours)",
                "seconds": res.total_seconds,
                "inter_bytes": _inter_bytes(res),
            }
        )
    return out


def _inter_bytes(res) -> float:
    return float(sum(e.max_bytes_inter for e in res.ledger.comm_events))


def run_strong_scaling(
    scale: int = 14,
    meshes: tuple[tuple[int, int], ...] = ((2, 2), (4, 4), (8, 8), (16, 16)),
    *,
    seed: int = 1,
) -> list[dict]:
    """Fixed SCALE, growing mesh: speedup and efficiency per point."""
    out = []
    base_seconds = None
    for rows, cols in meshes:
        setup = build_setup(scale, rows, cols, seed=seed)
        part, res = run_15d(setup)
        if base_seconds is None:
            base_seconds = res.total_seconds * (rows * cols)
        nodes = rows * cols
        speedup = base_seconds / nodes / res.total_seconds * nodes
        out.append(
            {
                "nodes": nodes,
                "seconds": res.total_seconds,
                "gteps": setup.num_edges / res.total_seconds / 1e9,
                "speedup_vs_smallest": (
                    out[0]["seconds"] / res.total_seconds if out else 1.0
                ),
                "efficiency": (
                    out[0]["seconds"]
                    / res.total_seconds
                    / (nodes / (meshes[0][0] * meshes[0][1]))
                    if out
                    else 1.0
                ),
            }
        )
    return out
