"""The R x C virtual process mesh (paper §4.1).

Ranks are numbered row-major: rank ``r * C + c`` sits at row ``r``, column
``c``.  With row-major numbering and the machine's contiguous supernode
blocks, a whole mesh row occupies consecutive node IDs — this realizes the
paper's "rows are mapped to supernodes" topology mapping whenever the row
length divides the supernode size, making row collectives intra-supernode
(full NIC bandwidth) while column and global traffic crosses the
oversubscribed fat-tree layer.

Vertices are block-distributed: vertex ``v`` belongs to rank
``v // ceil(n / P)`` (after Graph500 scrambling the blocks are statistically
uniform in degree mass).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.network import MachineSpec

__all__ = ["ProcessMesh"]


@dataclass(frozen=True)
class ProcessMesh:
    """An ``R x C`` mesh of simulated ranks over a machine."""

    rows: int
    cols: int
    machine: MachineSpec | None = None

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("mesh dimensions must be positive")
        if self.machine is not None and self.machine.num_nodes < self.num_ranks:
            raise ValueError(
                f"machine has {self.machine.num_nodes} nodes, mesh needs "
                f"{self.num_ranks}"
            )

    # ------------------------------------------------------------------
    # shape and coordinates
    # ------------------------------------------------------------------

    @property
    def num_ranks(self) -> int:
        return self.rows * self.cols

    def rank_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"coordinates ({row}, {col}) outside mesh")
        return row * self.cols + col

    def coords(self, rank: np.ndarray | int):
        """``(row, col)`` of each rank."""
        rank = np.asarray(rank, dtype=np.int64)
        if np.any((rank < 0) | (rank >= self.num_ranks)):
            raise ValueError("rank out of range")
        return rank // self.cols, rank % self.cols

    def row_of(self, rank: np.ndarray | int) -> np.ndarray:
        return self.coords(rank)[0]

    def col_of(self, rank: np.ndarray | int) -> np.ndarray:
        return self.coords(rank)[1]

    def row_ranks(self, row: int) -> np.ndarray:
        """All ranks in mesh row ``row``."""
        if not 0 <= row < self.rows:
            raise ValueError("row out of range")
        return np.arange(row * self.cols, (row + 1) * self.cols, dtype=np.int64)

    def col_ranks(self, col: int) -> np.ndarray:
        """All ranks in mesh column ``col``."""
        if not 0 <= col < self.cols:
            raise ValueError("col out of range")
        return np.arange(col, self.num_ranks, self.cols, dtype=np.int64)

    # ------------------------------------------------------------------
    # vertex ownership (block distribution)
    # ------------------------------------------------------------------

    def block_size(self, num_vertices: int) -> int:
        """Vertices per rank, rounded up."""
        return -(-num_vertices // self.num_ranks)

    def owner_of(self, vertex: np.ndarray | int, num_vertices: int) -> np.ndarray:
        """Owning rank of each vertex under block distribution."""
        vertex = np.asarray(vertex, dtype=np.int64)
        if np.any((vertex < 0) | (vertex >= num_vertices)):
            raise ValueError("vertex out of range")
        return vertex // self.block_size(num_vertices)

    def vertex_range(self, rank: int, num_vertices: int) -> tuple[int, int]:
        """``[lo, hi)`` interval of vertices owned by ``rank``."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError("rank out of range")
        b = self.block_size(num_vertices)
        lo = min(rank * b, num_vertices)
        return lo, min(lo + b, num_vertices)

    # ------------------------------------------------------------------
    # topology: supernodes
    # ------------------------------------------------------------------

    def supernode_of_rank(self, rank: np.ndarray | int) -> np.ndarray:
        """Supernode of each rank (ranks map 1:1 onto machine nodes)."""
        if self.machine is None:
            # No machine: treat the whole mesh as one supernode.
            return np.zeros_like(np.asarray(rank, dtype=np.int64))
        return self.machine.supernode_of(np.asarray(rank, dtype=np.int64))

    def row_is_intra_supernode(self, row: int) -> bool:
        """True when the whole row shares a supernode (the design goal)."""
        ranks = self.row_ranks(row)
        sn = self.supernode_of_rank(ranks)
        return bool(np.all(sn == sn[0]))

    def group_traffic_split(self, group: np.ndarray | list[int]) -> tuple[float, float]:
        """``(intra_frac, inter_frac)`` of a symmetric group collective.

        The canonical supernode split used by every traffic model layer
        (the analytic kernels, the baseline engines, and the functional
        :class:`~repro.runtime.comm.SimCommunicator`): a group wholly
        inside one supernode moves everything at full NIC bandwidth; a
        group spanning supernodes pays the oversubscribed inter rate for
        the fraction of peers outside the *least represented* rank's
        supernode — the worst case that bounds a symmetric collective.
        """
        group = np.asarray(group, dtype=np.int64)
        if group.size <= 1:
            return 1.0, 0.0
        sn = self.supernode_of_rank(group)
        if np.all(sn == sn[0]):
            return 1.0, 0.0
        counts = np.bincount(sn)
        counts = counts[counts > 0]
        worst_same = int(counts.min())
        inter = 1.0 - (worst_same - 1) / max(group.size - 1, 1)
        return 1.0 - inter, inter

    def split_intra_inter(
        self, from_rank: int, bytes_to: np.ndarray
    ) -> tuple[float, float]:
        """Split a per-destination byte vector into intra/inter supernode.

        ``bytes_to[j]`` is what ``from_rank`` sends to rank ``j``; traffic to
        itself is free and excluded.
        """
        bytes_to = np.asarray(bytes_to, dtype=np.float64)
        if bytes_to.shape != (self.num_ranks,):
            raise ValueError("bytes_to must have one entry per rank")
        sn = self.supernode_of_rank(np.arange(self.num_ranks))
        own = sn[from_rank]
        mask_self = np.zeros(self.num_ranks, dtype=bool)
        mask_self[from_rank] = True
        intra = float(bytes_to[(sn == own) & ~mask_self].sum())
        inter = float(bytes_to[sn != own].sum())
        return intra, inter
