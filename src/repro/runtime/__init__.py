"""Simulated SPMD runtime.

A New Sunway run uses one MPI process per node arranged in an R x C mesh.
This subpackage simulates that runtime inside one Python process:

- :mod:`repro.runtime.mesh` — the R x C process mesh, rank/coordinate
  mapping, row/column groups, vertex ownership, and the row-to-supernode
  mapping the 1.5D partitioning exploits.
- :mod:`repro.runtime.ledger` — the traffic/compute ledger: every
  would-be collective and kernel is recorded with its exact volumes and
  priced by the machine's :class:`~repro.machine.costmodel.CostModel`.
- :mod:`repro.runtime.comm` — a simulated communicator that really moves
  numpy buffers between per-rank inboxes (alltoallv, allgather,
  reduce-scatter, allreduce) while charging the ledger.

BFS output computed on this runtime is bit-exact with a real distributed
run; only the seconds are modeled (see DESIGN.md §2).
"""

from repro.runtime.comm import SimCommunicator
from repro.runtime.ledger import CommEvent, ComputeEvent, TrafficLedger
from repro.runtime.mesh import ProcessMesh

__all__ = [
    "ProcessMesh",
    "TrafficLedger",
    "CommEvent",
    "ComputeEvent",
    "SimCommunicator",
    "ReplayBFS",
    "ReplayResult",
]


def __getattr__(name):
    # Lazy: replay depends on repro.core, which itself imports this
    # package's submodules — eager import would be circular.
    if name in ("ReplayBFS", "ReplayResult"):
        from repro.runtime import replay

        return getattr(replay, name)
    raise AttributeError(f"module 'repro.runtime' has no attribute {name!r}")
