"""Traffic and compute ledger.

Every communication and kernel the simulated BFS performs is recorded here
with its *exact counted volume* and its *modeled time*.  The ledger is the
bridge between the functional simulation and the paper's evaluation
figures:

- Fig. 10's per-subgraph breakdown = compute+comm seconds grouped by the
  event ``phase`` tag (``"EH2EH"``, ``"L2L"``, ...);
- Fig. 11's per-communication-type breakdown = comm seconds grouped by
  :class:`~repro.machine.costmodel.CollectiveKind`, plus the compute and
  imbalance terms;
- Fig. 9's GTEPS = traversed edges / ``total_seconds``.

When a :class:`~repro.obs.tracer.Tracer` is attached (``tracer=``), every
charge additionally emits a leaf span under the tracer's currently open
span — simulated duration equal to the priced seconds, a ``bytes``
counter for collectives and an ``items`` counter for kernels — so span
aggregates reproduce the ledger's totals exactly.  The default
:data:`~repro.obs.tracer.NULL_TRACER` makes this a no-op.

When a :class:`~repro.obs.metrics.MetricsRegistry` is attached
(``metrics=``), the same charges feed the aggregate metric families:
``comm_seconds``/``comm_bytes``/``comm_events`` counters labeled by
``phase`` and collective ``kind``, ``compute_seconds``/``compute_items``/
``compute_events``/``imbalance_seconds`` counters labeled by ``phase``
and ``kernel``, a ``collective_bytes`` exponential histogram per kind,
and the ``rank_items`` per-rank work vector plus ``rank_load`` histogram
behind Fig. 13's load-balance analysis.  Registry counter totals equal
the ledger's totals exactly (``counter_total("comm_bytes") ==
total_bytes``); the default :data:`~repro.obs.metrics.NULL_METRICS`
makes this a no-op too.

When a :class:`~repro.resilience.faults.FaultInjector` is attached
(``faults=``), the ledger is additionally the fault *consumption* choke
point: every collective charge asks the injector for an outcome — each
drop/corruption records the failed attempt as a full-cost wasted
``CommEvent`` plus an exponential-backoff wait (:meth:`charge_wait`)
before the successful transfer, and straggler faults multiply the
successful attempt's critical-path seconds.  Because both the analytic
engines and the functional :class:`~repro.runtime.comm.SimCommunicator`
charge through here, all seven engine configs inherit fault behaviour
from this one hook.  The default (``faults=None``) skips the injector
entirely and keeps unfaulted runs bit-identical.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.machine.costmodel import CollectiveKind, CostModel
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

__all__ = ["CommEvent", "ComputeEvent", "TrafficLedger"]


@dataclass(frozen=True)
class CommEvent:
    """One collective operation."""

    phase: str
    kind: CollectiveKind
    participants: int
    max_bytes_intra: float
    max_bytes_inter: float
    total_bytes: float
    seconds: float


@dataclass(frozen=True)
class ComputeEvent:
    """One compute kernel invocation (time of the busiest node)."""

    phase: str
    kernel: str
    max_items: int
    total_items: int
    seconds: float
    #: Idle time of the average node while waiting for the busiest one.
    imbalance_seconds: float = 0.0


@dataclass
class TrafficLedger:
    """Accumulates priced communication and compute events."""

    cost_model: CostModel
    comm_events: list[CommEvent] = field(default_factory=list)
    compute_events: list[ComputeEvent] = field(default_factory=list)
    #: Observability sink; every charge mirrors into a leaf span.
    tracer: object = field(default=NULL_TRACER, repr=False, compare=False)
    #: Aggregate sink; every charge feeds the labeled metric families.
    metrics: object = field(default=NULL_METRICS, repr=False, compare=False)
    #: Optional :class:`~repro.resilience.faults.FaultInjector`; ``None``
    #: (the default) takes the fault-free fast path.
    faults: object = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _commit_collective(
        self,
        phase: str,
        kind: CollectiveKind,
        participants: int,
        max_bytes_intra: float,
        max_bytes_inter: float,
        total_bytes: float,
        seconds: float,
        wasted: bool = False,
    ) -> None:
        """Append one priced collective event and mirror it to the sinks."""
        self.comm_events.append(
            CommEvent(
                phase=phase,
                kind=kind,
                participants=participants,
                max_bytes_intra=max_bytes_intra,
                max_bytes_inter=max_bytes_inter,
                total_bytes=total_bytes,
                seconds=seconds,
            )
        )
        self.tracer.charge(
            kind.value,
            category="collective",
            sim_seconds=seconds,
            counters={"bytes": total_bytes},
            phase=phase,
            kind=kind.value,
            participants=participants,
            **({"wasted": True} if wasted else {}),
        )
        m = self.metrics
        m.counter("comm_seconds", phase=phase, kind=kind.value).inc(seconds)
        m.counter("comm_bytes", phase=phase, kind=kind.value).inc(total_bytes)
        m.counter("comm_events", phase=phase, kind=kind.value).inc()
        m.histogram("collective_bytes", kind=kind.value).observe(total_bytes)

    def charge_collective(
        self,
        phase: str,
        kind: CollectiveKind,
        participants: int,
        max_bytes_intra: float = 0.0,
        max_bytes_inter: float = 0.0,
        total_bytes: float | None = None,
        group=None,
    ) -> float:
        """Price and record one collective; returns its modeled seconds.

        ``group`` is the explicit participating rank set when the caller
        knows it (the functional communicator's row/column groups); it is
        only consulted by the fault injector, never by the cost model.
        With an injector installed, a drop/corruption fault records each
        failed attempt at full cost plus a backoff wait before the
        successful one, and stragglers stretch the successful attempt —
        the returned seconds are the *successful* attempt's only.
        """
        if max_bytes_intra < 0 or max_bytes_inter < 0:
            raise ValueError("byte volumes must be nonnegative")
        if total_bytes is not None and total_bytes < 0:
            raise ValueError("total_bytes must be nonnegative")
        seconds = self.cost_model.collective_time(
            kind, participants, max_bytes_intra, max_bytes_inter
        )
        total = (
            max_bytes_intra + max_bytes_inter
            if total_bytes is None
            else total_bytes
        )
        if self.faults is not None:
            outcome = self.faults.collective(phase, kind, participants, group)
            if outcome is not None:
                for attempt in range(outcome.retries):
                    # The lost transfer burned its full critical path...
                    self._commit_collective(
                        phase, kind, participants, max_bytes_intra,
                        max_bytes_inter, total, seconds, wasted=True,
                    )
                    # ...and the sender backed off before retrying.
                    self.charge_wait(phase, outcome.backoff.seconds(attempt))
                if outcome.straggle_factor != 1.0:
                    seconds = seconds * outcome.straggle_factor
        self._commit_collective(
            phase, kind, participants, max_bytes_intra, max_bytes_inter,
            total, seconds,
        )
        return seconds

    def charge_wait(self, phase: str, seconds: float) -> float:
        """Record pure waiting time (retry backoff, restore stalls).

        Priced as a zero-byte single-participant barrier with explicit
        seconds — it never consults the fault injector, so waits cannot
        recursively fault.
        """
        if seconds < 0:
            raise ValueError("wait seconds must be nonnegative")
        self._commit_collective(
            phase, CollectiveKind.BARRIER, 1, 0.0, 0.0, 0.0, seconds
        )
        return seconds

    def charge_compute(
        self,
        phase: str,
        kernel: str,
        per_node_items: np.ndarray | list[int],
        seconds_for_max: float,
    ) -> float:
        """Record a kernel: time is the busiest node's, imbalance is the gap.

        ``per_node_items`` is the exact per-node work vector (arcs scanned,
        messages produced...); ``seconds_for_max`` prices the busiest node.
        """
        if seconds_for_max < 0:
            raise ValueError("seconds_for_max must be nonnegative")
        items = np.asarray(per_node_items, dtype=np.int64)
        if items.size and items.min() < 0:
            raise ValueError("per-node item counts must be nonnegative")
        if self.faults is not None:
            # A straggling rank stretches the busiest-node critical path.
            factor = self.faults.compute_factor(phase, items)
            if factor != 1.0:
                seconds_for_max = seconds_for_max * factor
        max_items = int(items.max()) if items.size else 0
        total_items = int(items.sum()) if items.size else 0
        mean_items = total_items / items.size if items.size else 0.0
        imbalance = (
            seconds_for_max * (1.0 - mean_items / max_items) if max_items else 0.0
        )
        self.compute_events.append(
            ComputeEvent(
                phase=phase,
                kernel=kernel,
                max_items=max_items,
                total_items=total_items,
                seconds=seconds_for_max,
                imbalance_seconds=imbalance,
            )
        )
        self.tracer.charge(
            kernel,
            category="kernel",
            sim_seconds=seconds_for_max,
            counters={"items": float(total_items),
                      "imbalance_seconds": imbalance},
            phase=phase,
        )
        m = self.metrics
        m.counter("compute_seconds", phase=phase, kernel=kernel).inc(seconds_for_max)
        m.counter("compute_items", phase=phase, kernel=kernel).inc(total_items)
        m.counter("compute_events", phase=phase, kernel=kernel).inc()
        m.counter("imbalance_seconds", phase=phase).inc(imbalance)
        if items.size:
            # Per-rank work: exact totals (Fig. 13 balance) + histogram.
            m.vector("rank_items", phase=phase).add(items)
            m.histogram("rank_load", phase=phase).observe_many(items)
        return seconds_for_max

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def comm_seconds(self) -> float:
        return float(sum(e.seconds for e in self.comm_events))

    @property
    def compute_seconds(self) -> float:
        return float(sum(e.seconds for e in self.compute_events))

    @property
    def total_seconds(self) -> float:
        return self.comm_seconds + self.compute_seconds

    @property
    def imbalance_seconds(self) -> float:
        return float(sum(e.imbalance_seconds for e in self.compute_events))

    @property
    def total_bytes(self) -> float:
        return float(sum(e.total_bytes for e in self.comm_events))

    def seconds_by_phase(self) -> dict[str, float]:
        """Phase tag -> total (comm + compute) seconds (Fig. 10)."""
        acc: dict[str, float] = defaultdict(float)
        for e in self.comm_events:
            acc[e.phase] += e.seconds
        for c in self.compute_events:
            acc[c.phase] += c.seconds
        return dict(acc)

    def comm_seconds_by_kind(self) -> dict[CollectiveKind, float]:
        """Collective kind -> seconds (Fig. 11's comm categories)."""
        acc: dict[CollectiveKind, float] = defaultdict(float)
        for e in self.comm_events:
            acc[e.kind] += e.seconds
        return dict(acc)

    def bytes_by_kind(self) -> dict[CollectiveKind, float]:
        acc: dict[CollectiveKind, float] = defaultdict(float)
        for e in self.comm_events:
            acc[e.kind] += e.total_bytes
        return dict(acc)

    def merge(self, other: "TrafficLedger") -> None:
        """Fold another ledger's events into this one (multi-root runs)."""
        self.comm_events.extend(other.comm_events)
        self.compute_events.extend(other.compute_events)

    def reset(self) -> None:
        self.comm_events.clear()
        self.compute_events.clear()
