"""Simulated communicator: real data movement + ledger charging.

:class:`SimCommunicator` implements the MPI collectives the paper's BFS
uses (alltoallv, allgather, reduce-scatter/allreduce of bitmaps) over
per-rank numpy buffers living in one address space.  Data really moves —
the receiving side gets exactly the bytes a real MPI run would deliver —
and every call charges the :class:`~repro.runtime.ledger.TrafficLedger`
with the intra-/inter-supernode split derived from the mesh topology.

Collectives accept a ``group`` (any subset of ranks: a row, a column, or
the whole mesh), mirroring MPI sub-communicators.

Tracing: attach a :class:`~repro.obs.tracer.Tracer` to the ledger
(``TrafficLedger(cost, tracer=...)``) and every collective here emits a
leaf span — named after the collective kind, tagged with its phase and
participant count, carrying a ``bytes`` counter — under whatever span
the caller has open.

Metrics: attach a :class:`~repro.obs.metrics.MetricsRegistry` to the
ledger (``metrics=``) and the skewed collectives additionally record
their *per-rank* byte vectors — ``alltoallv`` the bytes each rank sends,
``allgather`` each rank's contribution — into the ``rank_bytes`` vector
family and the ``rank_byte_load`` histogram (both labeled by ``phase``),
the per-rank communication-imbalance data behind Fig. 13.

Fault interception: every collective passes its explicit rank ``group``
into :meth:`~repro.runtime.ledger.TrafficLedger.charge_collective`, so
an installed :class:`~repro.resilience.faults.FaultInjector` can scope
drop/straggler faults to the sub-communicator actually involved, and
every *delivered* payload makes one :meth:`_deliver` round-trip through
the injector — a corruption fault flips a byte of a copy, the sha256
checksum mismatch detects it, and the pristine data is re-delivered
(checksum-verified retransmission, with the wasted attempt and backoff
already charged by the ledger).  With no injector installed both hooks
are no-ops and delivery is byte-identical to the fault-free path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.costmodel import CollectiveKind
from repro.runtime.ledger import TrafficLedger
from repro.runtime.mesh import ProcessMesh

__all__ = ["SimCommunicator"]


@dataclass
class SimCommunicator:
    """Group collectives over simulated ranks."""

    mesh: ProcessMesh
    ledger: TrafficLedger

    def _deliver(self, phase: str, payload: np.ndarray) -> np.ndarray:
        """Payload delivery hook: corruption round-trip when faults are on."""
        faults = self.ledger.faults
        if faults is None:
            return payload
        return faults.verify_delivery(phase, payload)

    # ------------------------------------------------------------------
    # alltoallv
    # ------------------------------------------------------------------

    def alltoallv(
        self,
        phase: str,
        group: np.ndarray,
        send: dict[int, dict[int, np.ndarray]],
    ) -> dict[int, np.ndarray]:
        """Exchange variable-length buffers within ``group``.

        ``send[i][j]`` is what rank ``i`` sends to rank ``j`` (both must be
        in the group; missing entries mean empty).  Returns ``recv[j]``:
        the concatenation of all pieces addressed to ``j``, ordered by
        source rank — the deterministic order a rank-ordered MPI_Alltoallv
        delivers.
        """
        group = np.asarray(group, dtype=np.int64)
        group_set = set(group.tolist())
        p = self.mesh.num_ranks

        per_rank_intra = np.zeros(p, dtype=np.float64)
        per_rank_inter = np.zeros(p, dtype=np.float64)
        recv: dict[int, list[np.ndarray]] = {int(j): [] for j in group}
        total_bytes = 0.0

        for i in sorted(group_set):
            outgoing = send.get(i, {})
            bytes_to = np.zeros(p, dtype=np.float64)
            for j, buf in outgoing.items():
                if j not in group_set:
                    raise ValueError(f"rank {i} sends to {j} outside the group")
                buf = np.asarray(buf)
                if i != j:
                    bytes_to[j] += buf.nbytes
                    total_bytes += buf.nbytes
            intra, inter = self.mesh.split_intra_inter(i, bytes_to)
            per_rank_intra[i] = intra
            per_rank_inter[i] = inter
        for j in sorted(group_set):
            for i in sorted(group_set):
                buf = send.get(i, {}).get(j)
                if buf is not None and np.asarray(buf).size:
                    recv[j].append(np.asarray(buf))

        self.ledger.charge_collective(
            phase,
            CollectiveKind.ALLTOALLV,
            participants=group.size,
            max_bytes_intra=float(per_rank_intra.max(initial=0.0)),
            max_bytes_inter=float(per_rank_inter.max(initial=0.0)),
            total_bytes=total_bytes,
            group=group,
        )
        per_rank_sent = per_rank_intra + per_rank_inter
        m = self.ledger.metrics
        m.vector("rank_bytes", phase=phase).add(per_rank_sent)
        m.histogram("rank_byte_load", phase=phase).observe_many(
            per_rank_sent[group]
        )
        return {
            j: self._deliver(
                phase,
                np.concatenate(parts) if parts else np.array([], dtype=np.int64),
            )
            for j, parts in recv.items()
        }

    # ------------------------------------------------------------------
    # allgather
    # ------------------------------------------------------------------

    def allgather(
        self, phase: str, group: np.ndarray, contributions: dict[int, np.ndarray]
    ) -> np.ndarray:
        """Each group rank contributes an array; all receive the
        rank-ordered concatenation."""
        group = np.asarray(group, dtype=np.int64)
        parts = []
        max_contrib = 0.0
        contrib_bytes = np.zeros(self.mesh.num_ranks, dtype=np.float64)
        for i in sorted(int(g) for g in group):
            buf = np.asarray(contributions.get(i, np.array([], dtype=np.int64)))
            parts.append(buf)
            contrib_bytes[i] = float(buf.nbytes)
            max_contrib = max(max_contrib, float(buf.nbytes))
        gathered = (
            np.concatenate(parts) if parts else np.array([], dtype=np.int64)
        )
        # Ring-allgather critical path: every rank receives the full
        # gathered buffer, but each of its p-1 steps forwards a whole
        # block, so the largest contribution bounds the per-link time —
        # with skewed contributions that exceeds the received volume.
        per_rank = max(
            float(gathered.nbytes), max_contrib * max(group.size - 1, 0)
        )
        intra, inter = self._group_traffic_split(group, per_rank)
        self.ledger.charge_collective(
            phase,
            CollectiveKind.ALLGATHER,
            participants=group.size,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=float(gathered.nbytes) * group.size,
            group=group,
        )
        m = self.ledger.metrics
        m.vector("rank_bytes", phase=phase).add(contrib_bytes)
        m.histogram("rank_byte_load", phase=phase).observe_many(
            contrib_bytes[group]
        )
        return self._deliver(phase, gathered)

    # ------------------------------------------------------------------
    # bitmap reductions
    # ------------------------------------------------------------------

    def allreduce_or(
        self,
        phase: str,
        group: np.ndarray,
        bitmaps: dict[int, np.ndarray],
        *,
        kind: CollectiveKind = CollectiveKind.ALLREDUCE,
    ) -> np.ndarray:
        """Bitwise-OR reduce boolean arrays over a group; all receive it.

        This is the delegate-synchronization primitive: E frontier bits
        reduce over the whole mesh, H bits over rows and columns.
        """
        group = np.asarray(group, dtype=np.int64)
        arrays = [
            np.asarray(bitmaps[int(i)], dtype=bool)
            for i in group
            if int(i) in bitmaps
        ]
        if not arrays:
            raise ValueError("allreduce_or needs at least one contribution")
        shape = arrays[0].shape
        if any(a.shape != shape for a in arrays):
            raise ValueError("all bitmap contributions must share a shape")
        out = arrays[0].copy()
        for a in arrays[1:]:
            out |= a
        payload_bytes = float(np.ceil(out.size / 8.0))  # packed on the wire
        intra, inter = self._group_traffic_split(group, payload_bytes)
        self.ledger.charge_collective(
            phase,
            kind,
            participants=group.size,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=payload_bytes * group.size,
            group=group,
        )
        return self._deliver(phase, out)

    def reduce_scatter_or(
        self,
        phase: str,
        group: np.ndarray,
        bitmaps: dict[int, np.ndarray],
        splits: np.ndarray,
    ) -> dict[int, np.ndarray]:
        """OR-reduce bitmaps, then scatter slice ``k`` to the k-th group rank.

        ``splits`` has ``len(group) + 1`` boundaries into the bitmap.  This
        is the parent-reduction primitive (each owner receives the reduced
        bits of its own vertex range).
        """
        group = np.asarray(group, dtype=np.int64)
        splits = np.asarray(splits, dtype=np.int64)
        if splits.size != group.size + 1:
            raise ValueError("splits must have len(group) + 1 entries")
        arrays = [np.asarray(bitmaps[int(i)], dtype=bool) for i in group]
        out = arrays[0].copy()
        for a in arrays[1:]:
            out |= a
        payload_bytes = float(np.ceil(out.size / 8.0))
        intra, inter = self._group_traffic_split(group, payload_bytes)
        self.ledger.charge_collective(
            phase,
            CollectiveKind.REDUCE_SCATTER,
            participants=group.size,
            max_bytes_intra=intra,
            max_bytes_inter=inter,
            total_bytes=payload_bytes * group.size,
            group=group,
        )
        out = self._deliver(phase, out)
        return {
            int(rank): out[splits[k] : splits[k + 1]]
            for k, rank in enumerate(group)
        }

    # ------------------------------------------------------------------

    def barrier(self, phase: str, group: np.ndarray) -> None:
        group = np.asarray(group)
        self.ledger.charge_collective(
            phase, CollectiveKind.BARRIER, participants=group.size, group=group
        )

    def _group_traffic_split(
        self, group: np.ndarray, bytes_per_rank: float
    ) -> tuple[float, float]:
        """Classify a symmetric collective's per-rank volume.

        A single-rank group moves nothing; otherwise the canonical
        supernode split lives on :meth:`ProcessMesh.group_traffic_split`
        (shared with the analytic kernels and the baseline engines).
        """
        if group.size <= 1:
            return 0.0, 0.0
        intra_f, inter_f = self.mesh.group_traffic_split(group)
        return bytes_per_rank * intra_f, bytes_per_rank * inter_f
