"""Rank-explicit SPMD replay of the 1.5D BFS (distributed-semantics proof).

The main engine (:class:`repro.core.engine.DistributedBFS`) computes in a
single address space and charges communication analytically.  This module
is its *independent cross-check*: a BFS where

- every rank owns only its slice of state (local visited/parent arrays,
  its copies of the E bitmap and its column/row H delegate bitmaps);
- a rank reads **nothing** but its own state — every bit of remote
  information arrives through :class:`~repro.runtime.comm.SimCommunicator`
  collectives (delegate allreduces, row alltoallv for H2L/L2H, two-stage
  forwarded alltoallv for L2L);
- updates are applied by the receiving owner only.

If the 1.5D placement were wrong — an arc stored on a rank that lacks its
source's frontier bit, a message routed off-row — this engine would
produce a wrong BFS tree or crash on a missing key.  The test suite runs
it against the main engine and the serial reference and asserts equal
levels, plus that the communicator's measured volumes match the analytic
ledger's for the same traversal.

The replay mounts the same
:class:`~repro.core.kernels.scheduler.LevelSyncScheduler` as every other
engine: one :class:`_ReplayKernel` per component performs the per-rank
sweep (judging arc activity only from each rank's own state) and buffers
messages; the host's ``end_iteration`` hook routes them, lets owners
apply updates, and syncs the delegate bitmaps.  The replay is
deliberately simple (top-down only, no cost shortcuts): its job is
semantics, not speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BFSConfig
from repro.core.kernels.base import EMPTY_ACTIVATION, ComponentKernel
from repro.core.kernels.scheduler import LevelSyncScheduler, SchedulerHost
from repro.core.partition import PartitionedGraph, VertexClass
from repro.core.subgraphs import COMPONENT_ORDER
from repro.machine.costmodel import CostModel
from repro.machine.network import MachineSpec
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import Tracer
from repro.runtime.comm import SimCommunicator
from repro.runtime.ledger import TrafficLedger
from repro.runtime.mesh import ProcessMesh

__all__ = ["ReplayBFS", "ReplayResult"]


@dataclass
class _RankState:
    """Everything one rank is allowed to touch."""

    rank: int
    #: Owned vertex interval [lo, hi).
    lo: int
    hi: int
    #: Visited/parent for owned vertices only.
    visited: np.ndarray
    parent: np.ndarray
    #: Frontier bits of owned vertices (current iteration).
    active: np.ndarray
    #: Global E bitmap replica (E is delegated on every node).
    e_active: np.ndarray
    e_visited: np.ndarray
    #: H bitmaps for the H vertices of this rank's mesh column (sources
    #: are read from column delegates) and row (destination updates are
    #: collected by row delegates).
    col_h_active: np.ndarray
    col_h_visited: np.ndarray
    row_h_visited: np.ndarray
    #: Local parent records for delegated vertices (delayed reduction).
    delegate_parents: dict[int, int] = field(default_factory=dict)


@dataclass
class ReplayResult:
    """Outcome of a replay run."""

    root: int
    parent: np.ndarray
    num_iterations: int
    ledger: TrafficLedger
    messages_sent: int


class _ReplayKernel(ComponentKernel):
    """Per-rank top-down sweep of one component.

    Reads only each rank's private state (via the host's
    ``_active_mask`` placement proof), applies rank-local updates, and
    buffers remote messages into the host's send queues; the host routes
    them at iteration end, so the kernel itself activates nothing.
    """

    def __init__(self, host: "ReplayBFS", name: str) -> None:
        self.host = host
        self.name = name

    @property
    def num_arcs(self) -> int:
        return self.host.part.components[self.name].num_arcs

    def execute(self, direction, active, visited, ledger, record):
        host, name = self.host, self.name
        mesh, part, n = host.mesh, host.part, host.n
        sent = 0
        for r, (s_arr, d_arr) in host._rank_arcs[name].items():
            st = host._ranks[r]
            sel = host._active_mask(st, name, s_arr)
            if not np.any(sel):
                continue
            src_sel = s_arr[sel]
            dst_sel = d_arr[sel]
            if name in ("EH2EH", "E2L", "L2E"):
                # destination update is rank-local (delegate or owned)
                for u, v in zip(src_sel.tolist(), dst_sel.tolist()):
                    host._local_update(host._ranks, st, v, u, host._new_by_owner)
            elif name == "H2L":
                o_dst = mesh.owner_of(dst_sel, n)
                if np.any(mesh.row_of(o_dst) != mesh.row_of(r)):
                    raise AssertionError("H2L message left its row")
                for u, v, o in zip(
                    src_sel.tolist(), dst_sel.tolist(), o_dst.tolist()
                ):
                    host._row_sends.setdefault(r, {}).setdefault(o, []).append(
                        (v, u)
                    )
                    sent += 1
            elif name == "L2H":
                # message to the intersection rank (sender's row, the
                # H destination's delegate column) — intra-row.
                dest = int(mesh.row_of(r)) * mesh.cols + part.eh_col[dst_sel]
                for u, v, o in zip(
                    src_sel.tolist(), dst_sel.tolist(), dest.tolist()
                ):
                    host._row_sends.setdefault(r, {}).setdefault(int(o), []).append(
                        (v, u)
                    )
                    sent += 1
            else:  # L2L, global two-stage
                o_dst = mesh.owner_of(dst_sel, n)
                for u, v, o in zip(
                    src_sel.tolist(), dst_sel.tolist(), o_dst.tolist()
                ):
                    host._global_sends.setdefault(r, {}).setdefault(o, []).append(
                        (v, u)
                    )
                    sent += 1
        if sent:
            record.messages[self.name] = sent
        host._messages += sent
        # Activations happen at iteration end, once routing delivers.
        return EMPTY_ACTIVATION


class ReplayBFS(SchedulerHost):
    """Top-down 1.5D BFS with genuinely per-rank state."""

    def __init__(
        self,
        part: PartitionedGraph,
        machine: MachineSpec | None = None,
        tracer: Tracer | None = None,
        metrics=None,
        backend=None,
    ) -> None:
        self.part = part
        self.mesh: ProcessMesh = part.mesh
        if machine is None:
            machine = self.mesh.machine or MachineSpec(num_nodes=self.mesh.num_ranks)
        self.machine = machine
        self.n = part.num_vertices
        self.p = self.mesh.num_ranks

        self.num_vertices = self.n
        self.num_input_edges = part.total_arcs // 2
        self.cost = CostModel(machine)
        self.config = BFSConfig(max_iterations=self.n + 1)
        self.kernels = {
            name: _ReplayKernel(self, name) for name in COMPONENT_ORDER
        }
        self.scheduler = LevelSyncScheduler(
            self, self.kernels, tracer=tracer, metrics=metrics, backend=backend
        )

        # Per-component arcs grouped by owning rank, precomputed once.
        self._rank_arcs: dict[str, dict[int, tuple[np.ndarray, np.ndarray]]] = {}
        for name, comp in part.components.items():
            per_rank: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            if comp.num_arcs:
                s, d, r = comp.arcs()
                order = np.argsort(r, kind="stable")
                s, d, r = s[order], d[order], r[order]
                bounds = np.flatnonzero(np.concatenate(([True], r[1:] != r[:-1])))
                for i, start in enumerate(bounds):
                    stop = bounds[i + 1] if i + 1 < bounds.size else r.size
                    per_rank[int(r[start])] = (s[start:stop], d[start:stop])
            self._rank_arcs[name] = per_rank

        # H-vertex membership of each mesh column (for delegate bitmaps);
        # indexed by original vertex id -> position in the column set.
        self._col_h: list[np.ndarray] = []
        self._col_h_pos = np.full(self.n, -1, dtype=np.int64)
        h_mask = part.vclass == VertexClass.H
        for c in range(self.mesh.cols):
            members = np.flatnonzero(h_mask & (part.eh_col == c))
            self._col_h.append(members)
            self._col_h_pos[members] = np.arange(members.size)
        self._row_h: list[np.ndarray] = []
        self._row_h_pos = np.full(self.n, -1, dtype=np.int64)
        for rr in range(self.mesh.rows):
            members = np.flatnonzero(h_mask & (part.eh_row == rr))
            self._row_h.append(members)
            self._row_h_pos[members] = np.arange(members.size)

        self._e_pos = np.full(self.n, -1, dtype=np.int64)
        self._e_pos[part.e_ids] = np.arange(part.e_ids.size)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, root: int, **resilience) -> ReplayResult:
        result = self.scheduler.run(root, **resilience)
        return ReplayResult(
            root=root,
            parent=result.parent,
            num_iterations=result.num_iterations,
            ledger=result.ledger,
            messages_sent=self._messages,
        )

    # ------------------------------------------------------------------
    # scheduler hooks (the replay's SPMD machinery)
    # ------------------------------------------------------------------

    def make_ledger(self, tracer: Tracer, metrics=NULL_METRICS) -> TrafficLedger:
        ledger = TrafficLedger(self.cost, tracer=tracer, metrics=metrics)
        self._comm = SimCommunicator(self.mesh, ledger)
        self._messages = 0
        return ledger

    def _fresh_ranks(self) -> list[_RankState]:
        mesh, part = self.mesh, self.part
        ranks = []
        for r in range(self.p):
            lo, hi = mesh.vertex_range(r, self.n)
            col = int(mesh.col_of(r))
            ranks.append(
                _RankState(
                    rank=r,
                    lo=lo,
                    hi=hi,
                    visited=np.zeros(hi - lo, dtype=bool),
                    parent=np.full(hi - lo, -1, dtype=np.int64),
                    active=np.zeros(hi - lo, dtype=bool),
                    e_active=np.zeros(part.num_e, dtype=bool),
                    e_visited=np.zeros(part.num_e, dtype=bool),
                    col_h_active=np.zeros(self._col_h[col].size, dtype=bool),
                    col_h_visited=np.zeros(self._col_h[col].size, dtype=bool),
                    row_h_visited=np.zeros(
                        self._row_h[int(mesh.row_of(r))].size, dtype=bool
                    ),
                )
            )
        return ranks

    def seed(self, root: int) -> None:
        mesh = self.mesh
        self._ranks = self._fresh_ranks()
        owner_root = int(mesh.owner_of(root, self.n))
        st = self._ranks[owner_root]
        st.visited[root - st.lo] = True
        st.parent[root - st.lo] = root
        st.active[root - st.lo] = True
        self._seed_delegates(self._ranks, np.array([root]), np.array([root]))

    def restore(self, root: int, parent, visited, active) -> None:
        """Re-shard checkpointed global arrays into per-rank state.

        Each surviving rank rebuilds exactly what it is allowed to hold:
        its owned slices of ``visited``/``parent``/``active`` and its
        delegate replicas (global E bitmaps, column/row H bitmaps) taken
        from the restored global view — the SPMD analogue of reading the
        snapshot back from the parallel file system.
        """
        mesh, part = self.mesh, self.part
        self._ranks = self._fresh_ranks()
        e_active = active[part.e_ids] if part.num_e else np.zeros(0, dtype=bool)
        e_visited = visited[part.e_ids] if part.num_e else np.zeros(0, dtype=bool)
        for st in self._ranks:
            st.visited[:] = visited[st.lo:st.hi]
            st.parent[:] = np.where(
                st.visited, parent[st.lo:st.hi], -1
            )
            st.active[:] = active[st.lo:st.hi]
            st.e_active = e_active.copy()
            st.e_visited = e_visited.copy()
            col = int(mesh.col_of(st.rank))
            st.col_h_active = active[self._col_h[col]].astype(bool)
            st.col_h_visited = visited[self._col_h[col]].astype(bool)
            row = int(mesh.row_of(st.rank))
            st.row_h_visited = visited[self._row_h[row]].astype(bool)
            # Delegated vertices already reached keep their recorded
            # parents for the run-end delayed reduction.
            for v in np.flatnonzero(visited & (self._e_pos >= 0)).tolist():
                st.delegate_parents[v] = int(parent[v])
            for v in np.flatnonzero(
                visited & ((self._col_h_pos >= 0) | (self._row_h_pos >= 0))
            ).tolist():
                st.delegate_parents[v] = int(parent[v])

    def begin_iteration(self, ledger, active, visited) -> None:
        # The frontier-empty check is an allreduce in real MPI; the
        # scheduler's own emptiness test stands in for its result.
        self._comm.barrier("other", np.arange(self.p))
        self._new_by_owner = {r: [] for r in range(self.p)}
        self._row_sends = {}
        self._global_sends = {}

    def iteration_direction(self, active, visited) -> str:
        return "push"  # the replay is deliberately top-down only

    def end_iteration(self, ledger, record, active, visited, parent, next_active):
        ranks, comm = self._ranks, self._comm
        new_by_owner = self._new_by_owner
        self._route(comm, ranks, self._row_sends, new_by_owner, scope="row")
        self._route(comm, ranks, self._global_sends, new_by_owner, scope="global")

        # owners apply updates and build the next frontier + delegate
        # activation lists for the global sync.
        newly_v, newly_p = [], []
        for r, updates in new_by_owner.items():
            st = ranks[r]
            st.active[:] = False
            for v, pv in updates:
                idx = v - st.lo
                if not st.visited[idx]:
                    st.visited[idx] = True
                    st.parent[idx] = pv
                    st.active[idx] = True
                    newly_v.append(v)
                    newly_p.append(pv)
        # ranks whose updates were all duplicates still clear frontier
        for st in ranks:
            if st.rank not in new_by_owner:
                st.active[:] = False
        newly = np.array(newly_v, dtype=np.int64)
        parents = np.array(newly_p, dtype=np.int64)
        # mirror the owner-applied updates into the scheduler's global view
        if newly.size:
            parent[newly] = parents
            visited[newly] = True
            next_active[newly] = True
        self._seed_delegates(ranks, newly, parents, comm=comm)

    def end_run(self, ledger, tracer, parent) -> None:
        # the terminating frontier-empty check of the SPMD loop
        self._comm.barrier("other", np.arange(self.p))
        # delayed reduction of delegate-recorded parents
        for st in self._ranks:
            for v, pv in st.delegate_parents.items():
                if parent[v] == -1:
                    parent[v] = pv

    # ------------------------------------------------------------------

    def _seed_delegates(self, ranks, newly, parents, comm=None):
        """Propagate newly-activated E/H vertices into delegate bitmaps.

        In a real run this is the per-iteration delegate allreduce; here
        the OR-reduction is routed through the communicator when one is
        given (charging the ledger), then the reduced bits are installed
        into every rank's replicas.
        """
        part, mesh = self.part, self.mesh
        e_bits = np.zeros(part.num_e, dtype=bool)
        e_parents: dict[int, int] = {}
        col_bits = [np.zeros(self._col_h[c].size, dtype=bool) for c in range(mesh.cols)]
        col_parents: list[dict[int, int]] = [dict() for _ in range(mesh.cols)]
        row_bits = [np.zeros(self._row_h[rr].size, dtype=bool) for rr in range(mesh.rows)]
        for v, pv in zip(newly.tolist(), parents.tolist()):
            ep = self._e_pos[v]
            if ep >= 0:
                e_bits[ep] = True
                e_parents[v] = pv
            hp = self._col_h_pos[v]
            if hp >= 0:
                c = int(part.eh_col[v])
                col_bits[c][hp] = True
                col_parents[c][v] = pv
            rp = self._row_h_pos[v]
            if rp >= 0:
                row_bits[int(part.eh_row[v])][rp] = True
        if comm is not None and part.num_e:
            # global allreduce of E bits: every rank contributes, all get it
            e_bits = comm.allreduce_or(
                "other", np.arange(self.p), {r: e_bits for r in range(self.p)}
            )
        for st in ranks:
            st.e_active = e_bits.copy()
            st.e_visited |= e_bits
            c = int(mesh.col_of(st.rank))
            st.col_h_active = col_bits[c].copy()
            st.col_h_visited |= col_bits[c]
            rr = int(mesh.row_of(st.rank))
            st.row_h_visited |= row_bits[rr]
            st.delegate_parents.update(e_parents)
            st.delegate_parents.update(col_parents[c])
        if comm is not None and part.num_h and mesh.rows > 1:
            for c in range(mesh.cols):
                if col_bits[c].size:
                    comm.allreduce_or(
                        "other",
                        mesh.col_ranks(c),
                        {int(r): col_bits[c] for r in mesh.col_ranks(c)},
                    )
        if comm is not None and part.num_h and mesh.cols > 1:
            for rr in range(mesh.rows):
                if row_bits[rr].size:
                    comm.allreduce_or(
                        "other",
                        mesh.row_ranks(rr),
                        {int(r): row_bits[rr] for r in mesh.row_ranks(rr)},
                    )

    def _active_mask(self, st: _RankState, name: str, src: np.ndarray) -> np.ndarray:
        """Which stored arcs have an active source, *judged only from the
        rank's own state* — this is the placement-correctness core."""
        part = self.part
        if name in ("EH2EH", "H2L"):
            # source is E (global replica) or H (column delegate replica)
            e_idx = self._e_pos[src]
            h_idx = self._col_h_pos[src]
            out = np.zeros(src.size, dtype=bool)
            has_e = e_idx >= 0
            out[has_e] = st.e_active[e_idx[has_e]]
            has_h = h_idx >= 0
            if np.any(has_h):
                cols = part.eh_col[src[has_h]]
                mine = cols == int(self.mesh.col_of(st.rank))
                if not np.all(mine):
                    raise AssertionError(
                        f"{name} arc stored off its source's delegate column"
                    )
                out[np.flatnonzero(has_h)] = st.col_h_active[h_idx[has_h]]
            return out
        if name == "E2L":
            return st.e_active[self._e_pos[src]]
        # L-source components: the source must be an owned vertex.
        if np.any((src < st.lo) | (src >= st.hi)):
            raise AssertionError(f"{name} arc stored away from its source owner")
        return st.active[src - st.lo]

    def _local_update(self, ranks, st, v, u, new_by_owner):
        """Apply an update the current rank can satisfy locally: owned
        destination, or a delegated E/H destination."""
        if st.lo <= v < st.hi:
            new_by_owner.setdefault(st.rank, []).append((v, u))
            return
        ep = self._e_pos[v]
        if ep >= 0:
            if not st.e_visited[ep]:
                st.delegate_parents.setdefault(v, u)
                # mark for the iteration-end sync by forwarding to owner
                new_by_owner.setdefault(
                    int(self.mesh.owner_of(v, self.n)), []
                ).append((v, u))
            return
        # H destinations: collected by the *row* delegates (EH2EH arcs sit
        # on the destination's EH row); the column replica also absorbs
        # updates for arcs placed by the source's column.
        rp = self._row_h_pos[v]
        if rp >= 0 and int(self.part.eh_row[v]) == int(self.mesh.row_of(st.rank)):
            if not st.row_h_visited[rp]:
                st.delegate_parents.setdefault(v, u)
                new_by_owner.setdefault(
                    int(self.mesh.owner_of(v, self.n)), []
                ).append((v, u))
            return
        hp = self._col_h_pos[v]
        if hp >= 0 and int(self.part.eh_col[v]) == int(self.mesh.col_of(st.rank)):
            if not st.col_h_visited[hp]:
                st.delegate_parents.setdefault(v, u)
                new_by_owner.setdefault(
                    int(self.mesh.owner_of(v, self.n)), []
                ).append((v, u))
            return
        raise AssertionError(
            f"destination {v} is neither owned nor delegated on rank {st.rank}"
        )

    def _route(self, comm, ranks, sends, new_by_owner, scope):
        """Deliver buffered messages through the communicator."""
        mesh = self.mesh
        if not sends:
            return
        # encode (v, parent) pairs as v * n + parent
        n = self.n
        if scope == "row":
            for row in range(mesh.rows):
                group = mesh.row_ranks(row)
                payload = {
                    r: {
                        d: np.array([v * n + u for v, u in msgs], dtype=np.int64)
                        for d, msgs in sends.get(int(r), {}).items()
                    }
                    for r in group
                    if int(r) in sends
                }
                if not payload:
                    continue
                recv = comm.alltoallv("H2L", group, payload)
                self._apply_received(ranks, recv, new_by_owner)
        else:
            # stage 1: down the sender's column to the intersection rank
            fwd_sends: dict[int, dict[int, list]] = {}
            for s, by_dest in sends.items():
                for o_dst, msgs in by_dest.items():
                    fwd = int(
                        mesh.row_of(o_dst) * mesh.cols + mesh.col_of(s)
                    )
                    fwd_sends.setdefault(s, {}).setdefault(fwd, []).extend(
                        (v * n + u, o_dst) for v, u in msgs
                    )
            stage2_sends: dict[int, dict[int, list]] = {}
            for c in range(mesh.cols):
                group = mesh.col_ranks(c)
                payload = {}
                routing = {}
                for r in group:
                    r = int(r)
                    if r not in fwd_sends:
                        continue
                    payload[r] = {}
                    for fwd, pairs in fwd_sends[r].items():
                        payload[r][fwd] = np.array(
                            [code for code, _ in pairs], dtype=np.int64
                        )
                        routing.setdefault(fwd, []).extend(o for _, o in pairs)
                if not payload:
                    continue
                recv = comm.alltoallv("L2L", group, payload)
                for fwd, codes in recv.items():
                    dests = routing.get(fwd, [])
                    for code, o_dst in zip(codes.tolist(), dests):
                        stage2_sends.setdefault(fwd, {}).setdefault(
                            int(o_dst), []
                        ).append(code)
            # stage 2: along the intersection rank's row to the owner
            for row in range(mesh.rows):
                group = mesh.row_ranks(row)
                payload = {
                    int(r): {
                        d: np.array(codes, dtype=np.int64)
                        for d, codes in stage2_sends.get(int(r), {}).items()
                    }
                    for r in group
                    if int(r) in stage2_sends
                }
                if not payload:
                    continue
                recv = comm.alltoallv("L2L", group, payload)
                self._apply_received(ranks, recv, new_by_owner)

    def _apply_received(self, ranks, recv, new_by_owner):
        """Receivers apply messages through their own (delegate-aware)
        update path — owned destinations queue for the owner, delegated
        ones are absorbed by the local replica."""
        n = self.n
        for r, codes in recv.items():
            st = ranks[int(r)]
            for code in np.asarray(codes, dtype=np.int64).tolist():
                v, u = divmod(code, n)
                self._local_update(ranks, st, int(v), int(u), new_by_owner)
