"""Shared-memory parallel execution backend.

:class:`SharedMemoryBackend` runs kernel *bodies* — the pure arc
selection / scan half of every sub-iteration — chunked across a pool of
``multiprocessing`` workers reading zero-copy views of shared-memory
segments, then merges the chunk results and *commits* them through the
very same kernel code the simulated backend uses (ledger charges,
message routing, activation dedup).  Bit-identical outputs are therefore
structural, not coincidental:

- a body over slot/group range ``[0, n)`` equals the concatenation of
  bodies over ``[0, a), [a, b), ..., [m, n)`` because selection order is
  slot/group order and (rank, dst) groups never straddle a chunk cut;
- per-rank scanned counters are bincounts, which sum exactly across
  chunks (integer-valued floats well below 2**53);
- hit dedup (:func:`~repro.core.subgraphs.dedup_pull_hits`,
  :func:`~repro.core.subgraphs.dedup_lane_hits`) runs on the merged
  arrays, after concatenation — the same single-pass rule as in-process.

Segments: one static segment per mounted component (its eight frozen
traversal arrays plus ``num_ranks``, packed with an offset table) and one
dynamic segment per vertex-count holding the per-call frontier masks.
Chunks are cut by *arc mass* (``searchsorted`` over the CSR/group
pointers) so workers receive balanced work, not balanced slot counts.

Cleanup is triple-guarded: engines route calls in ``try/finally``,
``close()`` is idempotent, and an ``atexit`` hook unlinks every segment
and terminates the pool even if the owner forgot — a crashed worker can
never leak ``/dev/shm`` space past process exit.
"""

from __future__ import annotations

import atexit
import os
import queue
import secrets
import time
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.core.subgraphs import (
    LanePullScan,
    PullScan,
    PullSelection,
    PushSelection,
    dedup_lane_hits,
    dedup_pull_hits,
)
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.runtime.backends.base import ExecutionBackend
from repro.runtime.backends.shmem_worker import (
    mask_segment_size,
    mask_views,
    worker_main,
)

__all__ = ["SharedMemoryBackend", "BackendWorkerError", "SEGMENT_PREFIX"]

#: Buckets for the per-dispatch chunk skew ratio (max/mean busy seconds
#: over one fan-out; 1.0 = perfectly balanced).
SKEW_BUCKETS = (1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0)

#: Every segment this backend creates carries this name prefix, so leak
#: checks can enumerate ``/dev/shm`` for leftovers.
SEGMENT_PREFIX = "repro-shm"

_EMPTY = np.array([], dtype=np.int64)


class BackendWorkerError(RuntimeError):
    """A worker crashed, raised, or stopped answering."""


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


def _align8(nbytes: int) -> int:
    return -(-nbytes // 8) * 8


def _chunk_ranges(indptr: np.ndarray, size: int, parts: int) -> list:
    """Cut ``[0, size)`` into ≤ ``parts`` ranges of near-equal arc mass.

    ``indptr`` is the CSR/group pointer array (``indptr[i]`` = first arc
    of slot ``i``); boundaries land where cumulative arcs cross the
    ``i/parts`` quantiles, so a hub slot never splits and chunk work is
    balanced by arcs rather than slots.
    """
    if size <= 0:
        return []
    parts = min(int(parts), size)
    if parts <= 1:
        return [(0, size)]
    total = int(indptr[size])
    if total == 0:
        bounds = np.linspace(0, size, parts + 1).astype(np.int64)
    else:
        targets = (np.arange(1, parts, dtype=np.int64) * total) // parts
        inner = np.searchsorted(indptr[: size + 1], targets, side="left")
        bounds = np.concatenate(([0], inner, [size]))
    bounds = np.maximum.accumulate(np.clip(bounds, 0, size))
    return [
        (int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


class _ComponentTable:
    """One component's frozen arrays packed into a shared segment."""

    def __init__(self, comp, parts: int) -> None:
        # Pin the component: tables are keyed by id(), and a freed
        # component's address can be reused by a later mount — the ref
        # keeps cached ids unique for the backend's whole lifetime.
        self.comp = comp
        arrays = {
            key: np.ascontiguousarray(arr)
            for key, arr in comp.body_arrays().items()
        }
        layout = {}
        offset = 0
        for key, arr in arrays.items():
            offset = _align8(offset)
            layout[key] = (offset, arr.dtype.str, arr.shape)
            offset += arr.nbytes
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=_segment_name()
        )
        for key, arr in arrays.items():
            off, dtype, shape = layout[key]
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self.shm.buf, offset=off
            )
            view[...] = arr
            del view
        self.meta = (self.shm.name, layout)
        num_slots = int(arrays["src_ids"].shape[0])
        num_groups = int(arrays["grp_dst"].shape[0])
        self.push_chunks = _chunk_ranges(arrays["src_indptr"], num_slots, parts)
        self.pull_chunks = _chunk_ranges(arrays["grp_ptr"], num_groups, parts)


class _MaskBuffers:
    """The per-call frontier masks for an ``n``-vertex graph."""

    def __init__(self, num_vertices: int) -> None:
        self.shm = shared_memory.SharedMemory(
            create=True,
            size=mask_segment_size(num_vertices),
            name=_segment_name(),
        )
        self.views = mask_views(self.shm.buf, num_vertices)
        self.meta = (self.shm.name, num_vertices)

    def release(self) -> None:
        # Drop the numpy views before closing: an exported memoryview
        # keeps the mapping alive and close() would raise BufferError.
        self.views = None


class SharedMemoryBackend(ExecutionBackend):
    """Real parallel body execution over ``multiprocessing.shared_memory``.

    ``workers`` body processes are forked lazily on the first chunked
    call (an engine that never executes — e.g. a replay engine whose
    kernels expose no body split — spawns nothing).  One backend may be
    mounted by several engines over the same graph; component segments
    are deduplicated by component identity.
    """

    name = "shmem"

    def __init__(
        self,
        workers: int = 1,
        *,
        start_method: str | None = None,
        task_timeout: float = 120.0,
    ) -> None:
        if int(workers) < 1:
            raise ValueError("workers must be >= 1")
        self._workers = int(workers)
        self._task_timeout = float(task_timeout)
        if start_method is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = get_context(start_method)
        self._tables: dict[int, _ComponentTable] = {}
        self._masks: dict[int, _MaskBuffers] = {}
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._epoch = 0
        self._closed = False
        self._atexit_registered = False
        self._tracer = NULL_TRACER
        self._metrics = NULL_METRICS
        self._telem_counters = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    def mount(self, kernels: dict) -> None:
        """Ship every splittable kernel's component arrays to ``/dev/shm``."""
        if self._closed:
            raise RuntimeError("backend is closed")
        self._register_atexit()
        for kernel in kernels.values():
            spec = kernel.body_spec()
            if spec is None:
                continue
            comp = spec.component
            if id(comp) not in self._tables:
                self._tables[id(comp)] = _ComponentTable(comp, self._workers)

    def _register_atexit(self) -> None:
        if not self._atexit_registered:
            atexit.register(self.close)
            self._atexit_registered = True

    def attach_telemetry(self, tracer, metrics) -> None:
        """Report worker wall-clock work into ``tracer``/``metrics``.

        Chunk results always carry their timing stamps; attaching sinks
        only changes what the parent does with them, so execution — and
        therefore every payload — is bit-identical either way.
        """
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics if metrics is not None else NULL_METRICS
        # Per-(worker, op) instrument cache: registry lookups build label
        # keys, which is per-chunk overhead the hot path can't afford.
        self._telem_counters = {}

    def _ensure_pool(self) -> None:
        if self._procs:
            return
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        for wid in range(self._workers):
            proc = self._ctx.Process(
                target=worker_main,
                args=(self._task_q, self._result_q, wid),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def _masks_for(self, num_vertices: int) -> _MaskBuffers:
        bufs = self._masks.get(num_vertices)
        if bufs is None:
            self._register_atexit()
            bufs = _MaskBuffers(num_vertices)
            self._masks[num_vertices] = bufs
        return bufs

    def close(self) -> None:
        """Stop the pool and unlink every segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._atexit_registered:
            try:
                atexit.unregister(self.close)
            except Exception:
                pass
        try:
            self._stop_pool()
        finally:
            self._unlink_segments()

    def _stop_pool(self) -> None:
        for _ in self._procs:
            try:
                self._task_q.put_nowait(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for q in (self._task_q, self._result_q):
            if q is not None:
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:
                    pass
        self._procs = []
        self._task_q = None
        self._result_q = None

    def _unlink_segments(self) -> None:
        for bufs in self._masks.values():
            bufs.release()
        segments = [t.shm for t in self._tables.values()]
        segments += [b.shm for b in self._masks.values()]
        self._tables = {}
        self._masks = {}
        for shm in segments:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass

    # ------------------------------------------------------------------
    # chunk dispatch
    # ------------------------------------------------------------------

    def _run_chunks(self, op, table, chunks, masks_meta, group=0):
        """Fan one body out over ``chunks`` and gather in chunk order."""
        if self._closed:
            raise RuntimeError("backend is closed")
        self._ensure_pool()
        self._epoch += 1
        epoch = self._epoch
        for chunk_id, (lo, hi) in enumerate(chunks):
            self._task_q.put(
                (epoch, chunk_id, op, table.meta, masks_meta, lo, hi, group)
            )
        results = [None] * len(chunks)
        telems = [None] * len(chunks)
        pending = len(chunks)
        deadline = time.monotonic() + self._task_timeout
        while pending:
            try:
                msg = self._result_q.get(timeout=0.5)
            except queue.Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    raise BackendWorkerError(
                        f"{len(dead)} of {len(self._procs)} shmem workers "
                        f"died (exit codes "
                        f"{[p.exitcode for p in dead]}); results incomplete"
                    ) from None
                if time.monotonic() > deadline:
                    raise BackendWorkerError(
                        f"shmem workers produced no result for {op!r} within "
                        f"{self._task_timeout:.0f}s"
                    ) from None
                continue
            kind, r_epoch, chunk_id, payload, telem = msg
            if r_epoch != epoch:
                continue  # stale result of an earlier, failed call
            if kind == "err":
                raise BackendWorkerError(
                    f"shmem worker failed on {op!r}:\n{payload}"
                )
            results[chunk_id] = payload
            telems[chunk_id] = telem
            pending -= 1
        if self._tracer.enabled or self._metrics.enabled:
            self._record_telemetry(op, telems)
        return results

    def _record_telemetry(self, op, telems) -> None:
        """Replay one dispatch's worker stamps as spans and metrics.

        The ``chunk`` span's ``busy_seconds`` counter and the
        ``worker_busy_seconds`` metric are incremented from the same
        ``body_end - body_start`` value, so per-worker sums of the two
        agree exactly by construction.
        """
        tracer, metrics = self._tracer, self._metrics
        trace = tracer.enabled
        meter = metrics.enabled
        cache = self._telem_counters
        busy = []
        for chunk_id, telem in enumerate(telems):
            if telem is None:
                continue
            wid, body_start, body_end, idle_s, attach_s = telem
            busy_s = body_end - body_start
            busy.append(busy_s)
            if trace:
                if idle_s > 0.0:
                    tracer.record_external(
                        "idle-wait",
                        category="worker",
                        wall_start=body_start - attach_s - idle_s,
                        wall_end=body_start - attach_s,
                        worker=wid,
                    )
                if attach_s > 1e-6:
                    tracer.record_external(
                        "attach",
                        category="worker",
                        wall_start=body_start - attach_s,
                        wall_end=body_start,
                        worker=wid,
                    )
                tracer.record_external(
                    "chunk",
                    category="worker",
                    wall_start=body_start,
                    wall_end=body_end,
                    worker=wid,
                    op=op,
                    chunk=chunk_id,
                    counters={"busy_seconds": busy_s},
                )
            if meter:
                counters = cache.get((wid, op))
                if counters is None:
                    counters = cache[(wid, op)] = (
                        metrics.counter("worker_busy_seconds", worker=wid),
                        metrics.counter("worker_idle_seconds", worker=wid),
                        metrics.counter("worker_attach_seconds", worker=wid),
                        metrics.counter("worker_tasks", worker=wid, op=op),
                    )
                counters[0].inc(busy_s)
                counters[1].inc(idle_s)
                counters[2].inc(attach_s)
                counters[3].inc()
        if busy and meter:
            mean = sum(busy) / len(busy)
            skew = (max(busy) / mean) if mean > 0.0 else 1.0
            dispatch = cache.get(("__dispatch__", op))
            if dispatch is None:
                dispatch = cache[("__dispatch__", op)] = (
                    metrics.histogram(
                        "worker_chunk_skew", buckets=SKEW_BUCKETS
                    ),
                    metrics.counter("backend_dispatches", op=op),
                )
            dispatch[0].observe(skew)
            dispatch[1].inc()

    # ------------------------------------------------------------------
    # chunk merging — concatenation in chunk order IS full-range order
    # ------------------------------------------------------------------

    @staticmethod
    def _merge_push(parts) -> PushSelection:
        if not parts:
            return PushSelection(_EMPTY, _EMPTY, _EMPTY)
        return PushSelection(
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
        )

    @staticmethod
    def _merge_pull_scan(parts, num_ranks: int) -> PullScan:
        if not parts:
            zero = np.zeros(num_ranks, dtype=np.int64)
            return PullScan(_EMPTY, _EMPTY, _EMPTY, zero)
        g_dst = np.concatenate([p[0] for p in parts])
        g_src = np.concatenate([p[1] for p in parts])
        g_rank = np.concatenate([p[2] for p in parts])
        scanned = np.sum([p[3] for p in parts], axis=0)
        if g_dst.size == 0:
            return PullScan(_EMPTY, _EMPTY, _EMPTY, scanned)
        hit_dst, hit_src, hit_rank = dedup_pull_hits(g_dst, g_src, g_rank)
        return PullScan(hit_dst, hit_src, hit_rank, scanned)

    @staticmethod
    def _merge_pull_select(parts, num_ranks: int) -> PullSelection:
        if not parts:
            zero = np.zeros(num_ranks, dtype=np.int64)
            return PullSelection(_EMPTY, _EMPTY, _EMPTY, zero)
        return PullSelection(
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
            np.sum([p[3] for p in parts], axis=0),
        )

    @staticmethod
    def _merge_lane_scan(parts, num_ranks: int) -> LanePullScan:
        if not parts:
            zero = np.zeros(num_ranks, dtype=np.int64)
            return LanePullScan([], zero, _EMPTY, _EMPTY)
        scanned = np.sum([p[1] for p in parts], axis=0)
        by_lane: dict[int, list] = {}
        for lane_hits, _ in parts:
            for lane, g_dst, g_src, g_rank in lane_hits:
                by_lane.setdefault(int(lane), []).append((g_dst, g_src, g_rank))
        lane_hits = [
            (
                lane,
                np.concatenate([h[0] for h in hits]),
                np.concatenate([h[1] for h in hits]),
                np.concatenate([h[2] for h in hits]),
            )
            for lane, hits in sorted(by_lane.items())
        ]
        updates, msg_dst, msg_rank = dedup_lane_hits(lane_hits, num_ranks)
        return LanePullScan(updates, scanned, msg_dst, msg_rank)

    # ------------------------------------------------------------------
    # the three scheduler call sites
    # ------------------------------------------------------------------

    def execute(self, kernel, direction, active, visited, ledger, record):
        spec = kernel.body_spec()
        if spec is None:
            return kernel.execute(direction, active, visited, ledger, record)
        comp = spec.component
        table = self._tables[id(comp)]
        masks = self._masks_for(active.size)
        if direction == "push":
            if not table.push_chunks:
                return kernel.execute(
                    direction, active, visited, ledger, record
                )
            masks.views["active"][:] = active
            parts = self._run_chunks(
                "push_active", table, table.push_chunks, masks.meta
            )
            sel = self._merge_push(parts)
            return kernel.commit_push(sel, active, visited, ledger, record)
        if spec.pull_kind == "query":
            # L2L pull is modeled as a query/reply exchange: the body is a
            # push-style selection over the unvisited mask.
            if not table.push_chunks:
                return kernel.execute(
                    direction, active, visited, ledger, record
                )
            masks.views["cand"][:] = ~visited
            parts = self._run_chunks(
                "push_cand", table, table.push_chunks, masks.meta
            )
            sel = self._merge_push(parts)
            return kernel.commit_pull(sel, active, visited, ledger, record)
        if not table.pull_chunks:
            return kernel.execute(direction, active, visited, ledger, record)
        masks.views["active"][:] = active
        masks.views["cand"][:] = ~visited
        parts = self._run_chunks(
            "pull_scan", table, table.pull_chunks, masks.meta
        )
        scan = self._merge_pull_scan(parts, comp.num_ranks)
        return kernel.commit_pull(scan, active, visited, ledger, record)

    def execute_program(self, kernel, program, direction, active, ledger, record):
        spec = kernel.body_spec()
        if spec is None or spec.pull_kind != "scan":
            return kernel.execute_program(
                program, direction, active, ledger, record
            )
        comp = spec.component
        table = self._tables[id(comp)]
        masks = self._masks_for(active.size)
        if direction == "push":
            if not table.push_chunks:
                return kernel.execute_program(
                    program, direction, active, ledger, record
                )
            masks.views["active"][:] = active
            parts = self._run_chunks(
                "push_active", table, table.push_chunks, masks.meta
            )
            sel = self._merge_push(parts)
            return kernel.commit_program_push(
                program, sel, active, ledger, record
            )
        if not table.pull_chunks:
            return kernel.execute_program(
                program, direction, active, ledger, record
            )
        candidates = program.pull_candidates()
        masks.views["active"][:] = active
        masks.views["cand"][:] = candidates
        parts = self._run_chunks(
            "pull_select", table, table.pull_chunks, masks.meta
        )
        sel = self._merge_pull_select(parts, comp.num_ranks)
        return kernel.commit_program_pull(
            program, sel, candidates, active, ledger, record
        )

    def execute_lanes(self, kernel, direction, group_lanes, lanes, ledger, record):
        spec = kernel.body_spec()
        if spec is None:
            return kernel.execute_lanes(
                direction, group_lanes, lanes, ledger, record
            )
        comp = spec.component
        table = self._tables[id(comp)]
        masks = self._masks_for(lanes.active.size)
        group = int(group_lanes)
        if direction == "push":
            if not table.push_chunks:
                return kernel.execute_lanes(
                    direction, group_lanes, lanes, ledger, record
                )
            masks.views["act_bits"][:] = lanes.active
            parts = self._run_chunks(
                "lanes_push", table, table.push_chunks, masks.meta, group
            )
            sel = self._merge_push(parts)
            return kernel.commit_push_lanes(
                sel, group_lanes, lanes, ledger, record
            )
        if spec.pull_kind == "query":
            if not table.push_chunks:
                return kernel.execute_lanes(
                    direction, group_lanes, lanes, ledger, record
                )
            masks.views["cand_bits"][:] = ~lanes.visited
            parts = self._run_chunks(
                "lanes_query", table, table.push_chunks, masks.meta, group
            )
            sel = self._merge_push(parts)
            return kernel.commit_pull_lanes(
                sel, group_lanes, lanes, ledger, record
            )
        if not table.pull_chunks:
            return kernel.execute_lanes(
                direction, group_lanes, lanes, ledger, record
            )
        masks.views["act_bits"][:] = lanes.active
        masks.views["cand_bits"][:] = ~lanes.visited
        parts = self._run_chunks(
            "lanes_pull_scan", table, table.pull_chunks, masks.meta, group
        )
        scan = self._merge_lane_scan(parts, comp.num_ranks)
        return kernel.commit_pull_lanes(
            scan, group_lanes, lanes, ledger, record
        )
