"""Pluggable execution backends for kernel sub-iterations.

*How* a sub-iteration runs is a backend decision, not a kernel one: the
kernels expose a pure body (arc selection / scan) plus a commit (ledger
charges, routing, activation dedup), and a backend decides where the
body executes.  :class:`SimulatedBackend` is the in-process rank-by-rank
loop every engine always used; :class:`SharedMemoryBackend` runs the
bodies chunked across ``multiprocessing`` workers over shared-memory
views of the component arrays and commits the merged result through the
same kernel code — bit-identical outputs, real wall-clock parallelism.
"""

from repro.runtime.backends.base import (
    BACKEND_NAMES,
    ExecutionBackend,
    SimulatedBackend,
    create_backend,
)
from repro.runtime.backends.shmem import BackendWorkerError, SharedMemoryBackend

__all__ = [
    "BACKEND_NAMES",
    "BackendWorkerError",
    "ExecutionBackend",
    "SharedMemoryBackend",
    "SimulatedBackend",
    "create_backend",
]
