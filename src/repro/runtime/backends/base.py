"""The :class:`ExecutionBackend` contract and the in-process backend.

A backend owns *where* a kernel's sub-iteration body runs.  The
scheduler routes its three kernel call sites (``execute``,
``execute_program``, ``execute_lanes``) through the mounted backend; the
simulated backend simply delegates to the kernel's own in-process
methods, while parallel backends split the body off via
:meth:`~repro.core.kernels.base.ComponentKernel.body_spec` and call the
kernel's commit on the merged result.

Backends are engine-independent: one instance may be mounted by several
schedulers (e.g. the serving pair shares one backend over one graph) and
must be closed by whoever created it — engines never close a backend
they were handed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SimulatedBackend",
    "create_backend",
]


class ExecutionBackend(ABC):
    """Executes kernel sub-iteration bodies on some substrate."""

    #: Registry key (``"simulated"``, ``"shmem"``, ...).
    name: str = "abstract"

    @property
    def workers(self) -> int:
        """Parallel workers the backend computes bodies with (1 = serial)."""
        return 1

    def mount(self, kernels: dict) -> None:
        """Prepare to execute ``kernels`` (a name -> kernel mapping).

        Called by every scheduler at construction; parallel backends use
        it to ship component arrays to their substrate.  Mounting is
        additive — a backend may serve several kernel sets at once.
        """

    def attach_telemetry(self, tracer, metrics) -> None:
        """Hand the backend a tracer/registry to report worker work into.

        Default: ignore — the simulated backend runs in-process, so the
        scheduler's own spans already cover its work.  Parallel backends
        override this to merge worker-measured wall-clock spans and
        ``worker_*`` metric families into the given sinks.  Schedulers
        call it at construction whenever they were built with telemetry
        enabled; the latest attach wins (a backend shared by several
        engines reports into whichever traced engine mounted last).
        """

    @abstractmethod
    def execute(self, kernel, direction, active, visited, ledger, record):
        """Run one BFS sub-iteration; same contract as
        :meth:`~repro.core.kernels.base.ComponentKernel.execute`."""

    @abstractmethod
    def execute_program(self, kernel, program, direction, active, ledger, record):
        """Run one vertex-program sub-iteration; same contract as
        :meth:`~repro.core.kernels.base.ComponentKernel.execute_program`."""

    @abstractmethod
    def execute_lanes(self, kernel, direction, group_lanes, lanes, ledger, record):
        """Run one batched-wave sub-iteration; same contract as
        :meth:`~repro.core.kernels.base.ComponentKernel.execute_lanes`."""

    def close(self) -> None:
        """Release backend resources (worker pools, shared segments).

        Idempotent; the backend must leave nothing behind (no processes,
        no ``/dev/shm`` segments) once this returns.
        """

    def describe(self) -> dict:
        """Config-fingerprint payload: what ran and how parallel."""
        return {"backend": self.name, "workers": self.workers}

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SimulatedBackend(ExecutionBackend):
    """The in-process rank-by-rank loop plus ledger pricing.

    Pure delegation to the kernel's own ``execute*`` methods — this is
    exactly the execution path every engine had before backends existed,
    so all golden records hold bit-for-bit.
    """

    name = "simulated"

    def execute(self, kernel, direction, active, visited, ledger, record):
        return kernel.execute(direction, active, visited, ledger, record)

    def execute_program(self, kernel, program, direction, active, ledger, record):
        return kernel.execute_program(program, direction, active, ledger, record)

    def execute_lanes(self, kernel, direction, group_lanes, lanes, ledger, record):
        return kernel.execute_lanes(direction, group_lanes, lanes, ledger, record)


#: Names :func:`create_backend` accepts (the CLI's ``--backend`` choices).
BACKEND_NAMES = ("simulated", "shmem")


def create_backend(name: str, *, workers: int = 1) -> ExecutionBackend:
    """Build a backend by registry name.

    ``workers`` only applies to parallel backends; the simulated backend
    ignores it (it is single-process by definition).
    """
    if name == "simulated":
        return SimulatedBackend()
    if name == "shmem":
        from repro.runtime.backends.shmem import SharedMemoryBackend

        return SharedMemoryBackend(workers=workers)
    raise ValueError(
        f"unknown backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
    )
