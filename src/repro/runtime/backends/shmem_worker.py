"""Worker loop of the :class:`~repro.runtime.backends.shmem.SharedMemoryBackend`.

A worker process executes pure traversal bodies — the range-parameterized
selection/scan functions of :mod:`repro.core.subgraphs` — over zero-copy
views of shared-memory segments the parent packed.  It never touches a
ledger, tracer, or kernel object: everything it reads arrives through a
segment (frozen component arrays, per-call frontier masks) and everything
it produces returns through the result queue as plain numpy arrays, which
the parent merges deterministically and commits through the kernel.

Task tuples are ``(epoch, chunk_id, op, table_meta, masks_meta, lo, hi,
group)``; a ``None`` task shuts the worker down.  ``table_meta`` is
``(segment_name, {array_key: (offset, dtype, shape)})`` for a component's
frozen arrays, ``masks_meta`` is ``(segment_name, num_vertices)`` for the
dynamic mask buffers (fixed layout, see :func:`mask_views`).  Segments
are attached lazily and cached by name, so the parent may mount new
components after the pool has started.

Result tuples are ``(kind, epoch, chunk_id, payload, telem)`` where
``telem = (worker_id, body_start, body_end, idle_seconds,
attach_seconds)`` — ``perf_counter`` stamps of the body execution plus
the seconds this worker spent blocked on the task queue and attaching
segments before it.  ``perf_counter`` is ``CLOCK_MONOTONIC`` on Linux,
so the stamps are directly comparable with the parent's and the main
tracer can replay them as per-worker spans.  Telemetry is always
measured (five floats per task, negligible next to any body) so the
task protocol does not fork on a telemetry flag; the parent simply
drops ``telem`` when no tracer/metrics are attached.
"""

from __future__ import annotations

import traceback
from multiprocessing import shared_memory
from time import perf_counter

import numpy as np

from repro.core.subgraphs import (
    pull_scan_lanes_range,
    pull_scan_range,
    pull_select_range,
    push_select_range,
)

__all__ = ["worker_main", "mask_views", "MASK_KEYS"]

#: Dynamic per-call inputs, in segment layout order.
MASK_KEYS = ("active", "cand", "act_bits", "cand_bits")


def _align8(nbytes: int) -> int:
    return -(-nbytes // 8) * 8


def mask_segment_size(num_vertices: int) -> int:
    """Bytes of the dynamic mask segment for an ``num_vertices`` graph."""
    return max(_align8(2 * num_vertices) + 16 * num_vertices, 1)


def mask_views(buf, num_vertices: int) -> dict[str, np.ndarray]:
    """Zero-copy mask arrays over a dynamic segment's buffer.

    Layout: ``active`` (bool), ``cand`` (bool), then 8-byte aligned
    ``act_bits`` and ``cand_bits`` (uint64 lane words).
    """
    n = num_vertices
    words_off = _align8(2 * n)
    return {
        "active": np.ndarray((n,), dtype=np.bool_, buffer=buf, offset=0),
        "cand": np.ndarray((n,), dtype=np.bool_, buffer=buf, offset=n),
        "act_bits": np.ndarray(
            (n,), dtype=np.uint64, buffer=buf, offset=words_off
        ),
        "cand_bits": np.ndarray(
            (n,), dtype=np.uint64, buffer=buf, offset=words_off + 8 * n
        ),
    }


def _disable_segment_tracking() -> None:
    """Stop this process's resource tracker from adopting segments.

    Workers only *attach*; the parent owns every segment and unlinks at
    ``close()``.  Before Python 3.13's ``track=False``, attaching also
    registers with the (fork-shared) resource tracker, so worker exits
    would unregister — or double-unregister — segments they never owned.
    A no-op ``register`` in the worker process leaves the parent's
    registration as the single source of truth.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register = lambda name, rtype: None
        resource_tracker.unregister = lambda name, rtype: None
    except Exception:
        pass


class _SegmentCache:
    """Lazily attached, name-keyed shared segments."""

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._tables: dict[str, dict[str, np.ndarray]] = {}
        self._masks: dict[str, dict[str, np.ndarray]] = {}

    def _attach(self, name: str) -> shared_memory.SharedMemory:
        shm = self._segments.get(name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=name)
            self._segments[name] = shm
        return shm

    def table(self, table_meta) -> dict[str, np.ndarray]:
        name, layout = table_meta
        arrays = self._tables.get(name)
        if arrays is None:
            shm = self._attach(name)
            arrays = {
                key: np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off
                )
                for key, (off, dtype, shape) in layout.items()
            }
            self._tables[name] = arrays
        return arrays

    def masks(self, masks_meta) -> dict[str, np.ndarray]:
        name, num_vertices = masks_meta
        views = self._masks.get(name)
        if views is None:
            shm = self._attach(name)
            views = mask_views(shm.buf, num_vertices)
            self._masks[name] = views
        return views

    def release(self) -> None:
        self._tables.clear()
        self._masks.clear()
        for shm in self._segments.values():
            try:
                shm.close()
            except Exception:
                pass
        self._segments.clear()


def _run_op(op, arrays, masks, lo, hi, group):
    """Dispatch one body over slots/groups ``[lo, hi)``."""
    if op == "push_active":
        return push_select_range(
            arrays["src_ids"],
            arrays["src_indptr"],
            arrays["push_dst"],
            arrays["push_rank"],
            masks["active"],
            lo,
            hi,
        )
    if op == "push_cand":
        return push_select_range(
            arrays["src_ids"],
            arrays["src_indptr"],
            arrays["push_dst"],
            arrays["push_rank"],
            masks["cand"],
            lo,
            hi,
        )
    num_ranks = int(arrays["num_ranks"][0])
    if op == "pull_scan":
        return pull_scan_range(
            arrays["grp_ptr"],
            arrays["grp_dst"],
            arrays["grp_rank"],
            arrays["pull_src"],
            masks["cand"],
            masks["active"],
            lo,
            hi,
            num_ranks,
        )
    if op == "pull_select":
        return pull_select_range(
            arrays["grp_ptr"],
            arrays["grp_dst"],
            arrays["grp_rank"],
            arrays["pull_src"],
            masks["cand"],
            masks["active"],
            lo,
            hi,
            num_ranks,
        )
    group = np.uint64(group)
    if op == "lanes_push":
        return push_select_range(
            arrays["src_ids"],
            arrays["src_indptr"],
            arrays["push_dst"],
            arrays["push_rank"],
            (masks["act_bits"] & group) != 0,
            lo,
            hi,
        )
    if op == "lanes_query":
        return push_select_range(
            arrays["src_ids"],
            arrays["src_indptr"],
            arrays["push_dst"],
            arrays["push_rank"],
            (masks["cand_bits"] & group) != 0,
            lo,
            hi,
        )
    if op == "lanes_pull_scan":
        return pull_scan_lanes_range(
            arrays["grp_ptr"],
            arrays["grp_dst"],
            arrays["grp_rank"],
            arrays["pull_src"],
            masks["cand_bits"] & group,
            masks["act_bits"] & group,
            group,
            lo,
            hi,
            num_ranks,
        )
    raise ValueError(f"unknown worker op {op!r}")


def worker_main(task_q, result_q, worker_id: int = 0) -> None:
    """Blocking worker loop; exits on a ``None`` task."""
    _disable_segment_tracking()
    cache = _SegmentCache()
    try:
        while True:
            wait_start = perf_counter()
            task = task_q.get()
            got = perf_counter()
            if task is None:
                return
            epoch, chunk_id, op, table_meta, masks_meta, lo, hi, group = task
            try:
                arrays = cache.table(table_meta)
                masks = cache.masks(masks_meta)
                body_start = perf_counter()
                payload = _run_op(op, arrays, masks, lo, hi, group)
                body_end = perf_counter()
                telem = (
                    worker_id,
                    body_start,
                    body_end,
                    got - wait_start,
                    body_start - got,
                )
                result_q.put(("ok", epoch, chunk_id, payload, telem))
            except Exception:
                now = perf_counter()
                telem = (worker_id, got, now, got - wait_start, 0.0)
                result_q.put(
                    ("err", epoch, chunk_id, traceback.format_exc(), telem)
                )
    finally:
        cache.release()
