"""R-MAT / Kronecker edge generation (Graph500 specification).

R-MAT (Chakrabarti et al., 2004) places each edge by recursively descending
``scale`` levels of the adjacency matrix, choosing one of four quadrants per
level with probabilities ``(A, B, C, D)``.  The Graph500 configuration is
``A=0.57, B=0.19, C=0.19, D=0.05`` with edge factor 16, producing an
extremely skewed, multi-peak degree distribution (paper Fig. 2).

The generator below is fully vectorized: one boolean draw per (edge, level)
for each of the two endpoint bits, i.e. O(m * scale) work with no Python
loops over edges.  Vertex labels are scrambled with a seeded random
permutation as required by the specification (without scrambling, low vertex
IDs would correlate with high degree, which would make block vertex
distribution pathologically imbalanced).
"""

from __future__ import annotations

import numpy as np

from repro.graph500.spec import DEFAULT_EDGE_FACTOR, RMAT_A, RMAT_B, RMAT_C

__all__ = ["rmat_edges", "scramble_vertices", "generate_edges"]


def rmat_edges(
    scale: int,
    num_edges: int,
    *,
    a: float = RMAT_A,
    b: float = RMAT_B,
    c: float = RMAT_C,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    chunk_size: int = 1 << 22,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``num_edges`` R-MAT edges over ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    num_edges:
        Number of undirected edges to emit (duplicates and self loops may
        occur, as the specification allows).
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c`` must be nonnegative.
    rng, seed:
        Randomness; pass exactly one (or neither for a fresh default rng).
    chunk_size:
        Edges generated per vectorized chunk, bounding peak memory at
        roughly ``2 * chunk_size * 8`` bytes of scratch per level.

    Returns
    -------
    ``(src, dst)`` int64 arrays of length ``num_edges``.
    """
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if rng is None:
        rng = np.random.default_rng(seed)
    d = 1.0 - (a + b + c)
    if min(a, b, c, d) < 0 or max(a, b, c) > 1:
        raise ValueError(f"invalid quadrant probabilities a={a} b={b} c={c} d={d}")
    if scale < 1:
        raise ValueError("scale must be >= 1")
    if num_edges < 0:
        raise ValueError("num_edges must be >= 0")

    src = np.empty(num_edges, dtype=np.int64)
    dst = np.empty(num_edges, dtype=np.int64)
    for start in range(0, num_edges, chunk_size):
        stop = min(start + chunk_size, num_edges)
        s, t = _rmat_chunk(scale, stop - start, a, b, c, rng)
        src[start:stop] = s
        dst[start:stop] = t
    return src, dst


def _rmat_chunk(
    scale: int, m: int, a: float, b: float, c: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized quadrant descent for one chunk of ``m`` edges."""
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Per level: draw u in [0,1); src bit set iff u >= a + b (lower half),
    # dst bit set iff u lands in quadrant B or D.  Equivalent to the nested
    # conditional probabilities of classic R-MAT.
    ab = a + b
    for _level in range(scale):
        u = rng.random(m)
        src_bit = u >= ab
        # Within the top half, P(dst bit) = b / (a + b); within the bottom
        # half, P(dst bit) = d / (c + d).  Draw a second variate for the
        # column choice, conditioned on the row choice.
        v = rng.random(m)
        thresh = np.where(src_bit, c / (1.0 - ab) if ab < 1.0 else 0.0, a / ab if ab > 0 else 0.0)
        dst_bit = v >= thresh
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return src, dst


def scramble_vertices(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Apply a random vertex-label permutation to an edge list.

    Graph500 requires vertex labels to be scrambled so that the benchmark
    cannot exploit the correlation between R-MAT vertex index and degree.
    The permutation is drawn from ``rng``/``seed``.
    """
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if rng is None:
        rng = np.random.default_rng(seed)
    perm = rng.permutation(num_vertices).astype(np.int64)
    return perm[np.asarray(src, dtype=np.int64)], perm[np.asarray(dst, dtype=np.int64)]


def generate_edges(
    scale: int,
    *,
    edge_factor: int = DEFAULT_EDGE_FACTOR,
    seed: int = 1,
    scramble: bool = True,
    a: float = RMAT_A,
    b: float = RMAT_B,
    c: float = RMAT_C,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a Graph500-conforming edge list for ``scale``.

    Convenience wrapper producing ``edge_factor * 2**scale`` scrambled R-MAT
    edges with a single deterministic seed.  This is the entry point the
    benchmark harness and examples use.
    """
    rng = np.random.default_rng(seed)
    n = 1 << scale
    src, dst = rmat_edges(scale, edge_factor * n, a=a, b=b, c=c, rng=rng)
    if scramble:
        src, dst = scramble_vertices(src, dst, n, rng=rng)
    return src, dst
