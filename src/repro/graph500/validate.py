"""Graph500 BFS output validation (specification section 5).

A conforming run must validate each BFS parent tree.  The specification's
checks, implemented vectorized over the edge list:

1. the root is its own parent;
2. every tree edge ``(v, parent[v])`` exists in the input graph;
3. the implied levels are consistent: every graph edge connects vertices
   whose levels differ by at most one;
4. reachability is complete: no graph edge connects a visited vertex to an
   unvisited one (so the tree spans the root's entire component);
5. parent pointers contain no cycles (levels are well defined).

:func:`validate_bfs_result` raises :class:`ValidationError` with a precise
message on the first violated rule — the failure-injection tests assert each
rule actually fires.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graph500.reference import bfs_levels_from_parents

__all__ = ["ValidationError", "validate_bfs_result"]


class ValidationError(AssertionError):
    """Raised when a BFS parent array violates the Graph500 specification."""


def validate_bfs_result(
    graph: CSRGraph,
    root: int,
    parent: np.ndarray,
    *,
    edge_src: np.ndarray | None = None,
    edge_dst: np.ndarray | None = None,
) -> np.ndarray:
    """Validate ``parent`` as a BFS tree of ``graph`` rooted at ``root``.

    Parameters
    ----------
    graph:
        The traversal graph (symmetrized CSR).
    root, parent:
        The BFS output to check.
    edge_src, edge_dst:
        Optional original undirected edge list; when given, rule 3/4 are
        checked against it (cheaper than re-expanding the CSR).  Defaults to
        the CSR's arcs.

    Returns
    -------
    The per-vertex level array (``-1`` for unreachable vertices), so callers
    can reuse it for depth comparisons.
    """
    n = graph.num_vertices
    parent = np.asarray(parent, dtype=np.int64)
    if parent.shape != (n,):
        raise ValidationError(
            f"parent array has shape {parent.shape}, expected ({n},)"
        )
    if not 0 <= root < n:
        raise ValidationError(f"root {root} out of range")

    # Rule 1: root is its own parent.
    if parent[root] != root:
        raise ValidationError(
            f"root {root} has parent {parent[root]}, expected itself"
        )
    if np.any(parent < -1) or np.any(parent >= n):
        bad = int(np.flatnonzero((parent < -1) | (parent >= n))[0])
        raise ValidationError(f"vertex {bad} has out-of-range parent {parent[bad]}")

    # Rule 5 (and level computation): parents form a forest rooted at root.
    try:
        level = bfs_levels_from_parents(graph, root, parent)
    except ValueError as exc:
        raise ValidationError(str(exc)) from exc

    visited = parent >= 0
    if np.any(visited & (level < 0)):
        bad = int(np.flatnonzero(visited & (level < 0))[0])
        raise ValidationError(
            f"vertex {bad} has a parent but no path to the root"
        )

    # Rule 2: every tree edge exists in the graph.
    tree_children = np.flatnonzero(visited & (np.arange(n) != root))
    if tree_children.size:
        tree_parents = parent[tree_children]
        if not _arcs_exist(graph, tree_parents, tree_children):
            missing = _first_missing_arc(graph, tree_parents, tree_children)
            raise ValidationError(
                f"tree edge ({missing[0]}, {missing[1]}) not present in graph"
            )

    # Rules 3 and 4 over the edge list.
    if edge_src is None or edge_dst is None:
        edge_src, edge_dst = graph.arcs()
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    nonloop = edge_src != edge_dst
    u, v = edge_src[nonloop], edge_dst[nonloop]

    lu, lv = level[u], level[v]
    both = (lu >= 0) & (lv >= 0)
    if np.any(np.abs(lu[both] - lv[both]) > 1):
        idx = int(np.flatnonzero(np.abs(lu[both] - lv[both]) > 1)[0])
        uu, vv = u[both][idx], v[both][idx]
        raise ValidationError(
            f"edge ({uu}, {vv}) spans levels {level[uu]} and {level[vv]}"
        )

    one_side = (lu >= 0) != (lv >= 0)
    if np.any(one_side):
        idx = int(np.flatnonzero(one_side)[0])
        raise ValidationError(
            f"edge ({u[idx]}, {v[idx]}) connects visited and unvisited vertices"
        )
    return level


def _arcs_exist(graph: CSRGraph, src: np.ndarray, dst: np.ndarray) -> bool:
    """Vectorized membership test: does every arc (src_i, dst_i) exist?"""
    return _missing_mask(graph, src, dst).sum() == 0


def _first_missing_arc(
    graph: CSRGraph, src: np.ndarray, dst: np.ndarray
) -> tuple[int, int]:
    miss = np.flatnonzero(_missing_mask(graph, src, dst))
    i = int(miss[0])
    return int(src[i]), int(dst[i])


def _missing_mask(graph: CSRGraph, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Boolean mask of queried arcs that are absent from the CSR.

    Encodes arcs as ``src * n + dst`` and set-intersects against the stored
    arcs — O((m + q) log(m)) with numpy sorting, no Python loop.
    """
    n = graph.num_vertices
    g_src, g_dst = graph.arcs()
    stored = g_src * n + g_dst
    stored.sort()
    queried = src * n + dst
    pos = np.searchsorted(stored, queried)
    pos = np.clip(pos, 0, stored.size - 1)
    found = stored.size > 0
    present = (stored[pos] == queried) if found else np.zeros(queried.size, bool)
    return ~present
