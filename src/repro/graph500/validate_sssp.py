"""SSSP output validation (Graph500 kernel 3's checks).

For nonnegative weights, the following vectorized checks form a complete
*optimality certificate* for a distance/parent pair — if they all pass,
the distances are exactly the shortest-path distances:

1. the root has distance 0 and is its own parent;
2. no edge is relaxable: ``d(v) <= d(u) + w(u, v)`` for every edge with
   ``d(u)`` finite (so no shorter path exists);
3. every visited non-root vertex's parent edge is tight:
   ``d(v) == d(parent(v)) + w(parent(v), v)`` and the edge exists (so
   every reported distance is achieved by a real path);
4. reachability is complete: no edge connects a finite vertex to an
   infinite one.
"""

from __future__ import annotations

import numpy as np

from repro.graph500.validate import ValidationError

__all__ = ["validate_sssp_result"]


def validate_sssp_result(
    num_vertices: int,
    edge_src: np.ndarray,
    edge_dst: np.ndarray,
    weights: np.ndarray,
    root: int,
    distance: np.ndarray,
    parent: np.ndarray,
    *,
    atol: float = 1e-9,
) -> None:
    """Raise :class:`ValidationError` unless (distance, parent) is an
    exact SSSP solution of the weighted undirected multigraph."""
    n = num_vertices
    distance = np.asarray(distance, dtype=np.float64)
    parent = np.asarray(parent, dtype=np.int64)
    if distance.shape != (n,) or parent.shape != (n,):
        raise ValidationError("distance/parent arrays have wrong shape")
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0):
        raise ValidationError("weights must be nonnegative")

    # Rule 1.
    if not 0 <= root < n:
        raise ValidationError("root out of range")
    if distance[root] != 0.0:
        raise ValidationError(f"root distance is {distance[root]}, expected 0")
    if parent[root] != root:
        raise ValidationError("root must be its own parent")

    nonloop = edge_src != edge_dst
    u, v, w = edge_src[nonloop], edge_dst[nonloop], weights[nonloop]

    # Rule 4.
    fin_u = np.isfinite(distance[u])
    fin_v = np.isfinite(distance[v])
    if np.any(fin_u != fin_v):
        i = int(np.flatnonzero(fin_u != fin_v)[0])
        raise ValidationError(
            f"edge ({u[i]}, {v[i]}) connects reached and unreached vertices"
        )

    # Rule 2 (both orientations of the undirected edge).
    both = fin_u & fin_v
    du, dv, wk = distance[u[both]], distance[v[both]], w[both]
    bad = (dv > du + wk + atol) | (du > dv + wk + atol)
    if np.any(bad):
        i = int(np.flatnonzero(bad)[0])
        raise ValidationError(
            f"relaxable edge ({u[both][i]}, {v[both][i]}, w={wk[i]:.6g}): "
            f"d={du[i]:.6g} / d={dv[i]:.6g}"
        )

    # Rule 3: tight parent edges.  Build a (min-weight) lookup per pair.
    visited = np.isfinite(distance)
    children = np.flatnonzero(visited & (np.arange(n) != root))
    if np.any(parent[children] < 0) or np.any(parent[children] >= n):
        i = int(children[np.flatnonzero(
            (parent[children] < 0) | (parent[children] >= n)
        )[0]])
        raise ValidationError(f"vertex {i} reached but parent {parent[i]} invalid")
    if children.size:
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        key = lo * n + hi
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(key_sorted[1:] != key_sorted[:-1]) + 1)
        )
        w_min = np.minimum.reduceat(w[order], starts) if key.size else np.array([])
        key_unique = key_sorted[starts] if key.size else np.array([], np.int64)

        p = parent[children]
        k = np.minimum(children, p) * n + np.maximum(children, p)
        pos = np.searchsorted(key_unique, k)
        pos = np.clip(pos, 0, max(key_unique.size - 1, 0))
        exists = key_unique.size > 0
        present = (key_unique[pos] == k) if exists else np.zeros(k.size, bool)
        if not np.all(present):
            i = int(children[np.flatnonzero(~present)[0]])
            raise ValidationError(
                f"parent edge ({parent[i]}, {i}) not present in the graph"
            )
        # Tightness: rule 2 already bounds d(v) <= d(p) + w_min; requiring
        # d(v) >= d(p) + w_min closes it to equality, proving d(v) is
        # achieved by a real path through the parent (inductively to the
        # root).  A claimed distance *below* the achievable one means the
        # path does not exist.
        not_tight = distance[children] < distance[p] + w_min[pos] - atol
        if np.any(not_tight):
            i = int(children[np.flatnonzero(not_tight)[0]])
            raise ValidationError(
                f"vertex {i}'s distance is not achieved through parent "
                f"{parent[i]} (parent edge not tight)"
            )

    # Rule 5: parent pointers form a forest rooted at the root (zero-
    # weight cycles could otherwise fabricate a consistent unreachable
    # component).
    resolved = np.zeros(n, dtype=bool)
    resolved[root] = True
    resolved[~visited] = True
    pending = np.flatnonzero(~resolved)
    for _ in range(n):
        if pending.size == 0:
            break
        ready = resolved[parent[pending]]
        if not np.any(ready):
            raise ValidationError(
                f"parent pointers contain a cycle (e.g. at vertex "
                f"{int(pending[0])})"
            )
        resolved[pending[ready]] = True
        pending = pending[~ready]
    if pending.size:
        raise ValidationError("parent pointers contain a cycle")
