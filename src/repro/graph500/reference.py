"""Reference BFS implementations (ground truth for the distributed engines).

Two single-address-space implementations:

- :func:`serial_bfs` — level-synchronous top-down BFS, fully vectorized.
- :func:`direction_optimizing_bfs` — Beamer et al.'s push/pull switching
  BFS with the classic ``alpha``/``beta`` heuristics, returning per-iteration
  direction decisions so tests can assert the heuristic behaves.

Both return a Graph500-style parent array: ``parent[root] == root``,
``parent[v] == -1`` for unreachable ``v``, and otherwise ``parent[v]`` is a
neighbor of ``v`` one BFS level closer to the root.  BFS parent trees are not
unique; engines are compared via *levels* (:func:`bfs_levels_from_parents`),
which are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.csr import CSRGraph

__all__ = [
    "serial_bfs",
    "direction_optimizing_bfs",
    "bfs_levels_from_parents",
    "DirectionTrace",
]


def serial_bfs(graph: CSRGraph, root: int) -> np.ndarray:
    """Level-synchronous top-down BFS; returns the parent array."""
    n = graph.num_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for n={n}")
    parent = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        # Expand all frontier adjacency lists at once.
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        lens = ends - starts
        total = int(lens.sum())
        if total == 0:
            break
        srcs = np.repeat(frontier, lens)
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lens) - lens, lens
        )
        dsts = indices[np.repeat(starts, lens) + offs]
        fresh = parent[dsts] == -1
        srcs, dsts = srcs[fresh], dsts[fresh]
        # First writer wins deterministically: keep the first occurrence of
        # each destination in frontier order.
        uniq, first = np.unique(dsts, return_index=True)
        parent[uniq] = srcs[first]
        frontier = uniq
    return parent


@dataclass
class DirectionTrace:
    """Per-iteration record of a direction-optimizing run."""

    directions: list[str] = field(default_factory=list)
    frontier_sizes: list[int] = field(default_factory=list)
    edges_examined: list[int] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.directions)


def direction_optimizing_bfs(
    graph: CSRGraph,
    root: int,
    *,
    alpha: float = 15.0,
    beta: float = 18.0,
    trace: DirectionTrace | None = None,
) -> np.ndarray:
    """Beamer-style direction-optimizing BFS.

    Switches top-down → bottom-up when the frontier's outgoing edge count
    exceeds (unexplored edges) / ``alpha`` and back when the frontier shrinks
    below ``n / beta``, the heuristic from Beamer et al. (SC'12).
    """
    n = graph.num_vertices
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for n={n}")
    indptr, indices = graph.indptr, graph.indices
    degrees = graph.degrees
    total_arcs = graph.num_arcs

    parent = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    visited = np.zeros(n, dtype=bool)
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    unexplored_arcs = total_arcs - int(degrees[root])
    bottom_up = False

    while frontier.size:
        frontier_arcs = int(degrees[frontier].sum())
        if not bottom_up and unexplored_arcs > 0 and frontier_arcs > unexplored_arcs / alpha:
            bottom_up = True
        elif bottom_up and frontier.size < n / beta:
            bottom_up = False

        if bottom_up:
            next_frontier, examined = _bottom_up_step(
                indptr, indices, visited, frontier, parent
            )
        else:
            next_frontier, examined = _top_down_step(
                indptr, indices, visited, frontier, parent
            )
        if trace is not None:
            trace.directions.append("bottom-up" if bottom_up else "top-down")
            trace.frontier_sizes.append(int(frontier.size))
            trace.edges_examined.append(examined)
        unexplored_arcs -= int(degrees[next_frontier].sum())
        frontier = next_frontier
    return parent


def _top_down_step(
    indptr: np.ndarray,
    indices: np.ndarray,
    visited: np.ndarray,
    frontier: np.ndarray,
    parent: np.ndarray,
) -> tuple[np.ndarray, int]:
    starts = indptr[frontier]
    lens = indptr[frontier + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.array([], dtype=np.int64), 0
    srcs = np.repeat(frontier, lens)
    offs = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(lens) - lens, lens)
    dsts = indices[np.repeat(starts, lens) + offs]
    fresh = ~visited[dsts]
    srcs, dsts = srcs[fresh], dsts[fresh]
    uniq, first = np.unique(dsts, return_index=True)
    parent[uniq] = srcs[first]
    visited[uniq] = True
    return uniq, total


def _bottom_up_step(
    indptr: np.ndarray,
    indices: np.ndarray,
    visited: np.ndarray,
    frontier: np.ndarray,
    parent: np.ndarray,
) -> tuple[np.ndarray, int]:
    n = visited.size
    in_frontier = np.zeros(n, dtype=bool)
    in_frontier[frontier] = True
    unvisited = np.flatnonzero(~visited)
    if unvisited.size == 0:
        return np.array([], dtype=np.int64), 0
    starts = indptr[unvisited]
    lens = indptr[unvisited + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.array([], dtype=np.int64), 0
    dsts = np.repeat(unvisited, lens)
    offs = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(lens) - lens, lens)
    srcs = indices[np.repeat(starts, lens) + offs]
    hit = in_frontier[srcs]
    # Early exit: each unvisited vertex takes its *first* in-frontier
    # neighbor.  We count only the arcs scanned up to and including that
    # first hit, matching the work an early-exiting implementation does.
    hit_dsts = dsts[hit]
    hit_srcs = srcs[hit]
    uniq, first = np.unique(hit_dsts, return_index=True)
    parent[uniq] = hit_srcs[first]
    visited[uniq] = True

    # Arcs scanned with early exit: position of the first hit within each
    # vertex's list, or the whole list when there is no hit.
    row_start = np.cumsum(lens) - lens
    pos_in_row = np.arange(total, dtype=np.int64) - np.repeat(row_start, lens)
    examined_full = lens.copy()
    if hit_dsts.size:
        hit_pos = pos_in_row[hit]
        # first hit position per destination vertex
        order = np.lexsort((hit_pos, hit_dsts))
        hd = hit_dsts[order]
        hp = hit_pos[order]
        first_idx = np.unique(hd, return_index=True)[1]
        first_pos = hp[first_idx]
        # map destination vertex -> row index in `unvisited`
        row_of = np.searchsorted(unvisited, hd[first_idx])
        examined_full[row_of] = first_pos + 1
    return uniq, int(examined_full.sum())


def bfs_levels_from_parents(
    graph: CSRGraph, root: int, parent: np.ndarray
) -> np.ndarray:
    """Compute BFS levels implied by a parent array.

    Follows parent pointers iteratively (vectorized pointer-jumping free
    version: repeatedly resolve vertices whose parents' level is known).
    Raises ``ValueError`` on cycles or out-of-range parents — useful as a
    cheap structural check before full validation.
    """
    n = graph.num_vertices
    parent = np.asarray(parent, dtype=np.int64)
    if parent.shape != (n,):
        raise ValueError("parent array has wrong shape")
    level = np.full(n, -1, dtype=np.int64)
    if parent[root] != root:
        raise ValueError("root must be its own parent")
    level[root] = 0
    known = parent == root
    known[root] = True
    level[(parent == root) & (np.arange(n) != root)] = 1
    remaining = np.flatnonzero((parent >= 0) & (level == -1))
    for _ in range(n):
        if remaining.size == 0:
            break
        p = parent[remaining]
        if np.any((p < 0) | (p >= n)):
            raise ValueError("parent pointer out of range")
        ready = level[p] >= 0
        level[remaining[ready]] = level[p[ready]] + 1
        remaining = remaining[~ready]
    if remaining.size:
        raise ValueError("parent pointers contain a cycle")
    return level
