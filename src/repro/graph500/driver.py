"""Official Graph500 benchmark flow.

The specification's run structure, reproduced end to end:

1. **Generation** — produce the edge list (not timed).
2. **Kernel 1 (construction)** — build the search-ready data structure;
   timed.  Here that is the 3-level 1.5D partitioning; when a
   :class:`~repro.core.preprocessing.PreprocessingReport` is supplied the
   construction time also carries the simulated in-place global sort cost.
3. **Root sampling** — 64 search keys sampled uniformly from vertices
   with degree >= 1, deduplicated, as the reference code does.
4. **Kernel 2 (BFS)** — one timed BFS per root, each validated by the
   five spec checks.
5. **Output statistics** — the official result block: min/firstquartile/
   median/thirdquartile/max/mean/stddev over times and TEPS, with the
   harmonic mean and its standard error for TEPS (the quantity the
   Graph500 list ranks by).

Times here are the *simulated* seconds of the machine model; the
statistics machinery is the specification's.

Pass ``tracer=`` a :class:`~repro.obs.tracer.Tracer` to record the whole
flow as a span tree: ``generate`` and ``construction`` phases, one
``root`` span per search key (containing the engine's per-iteration and
per-component spans), a ``validate`` phase per root, and a final
``harvest`` phase for the statistics block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BFSConfig
from repro.core.engine import DistributedBFS
from repro.core.metrics import BFSRunResult
from repro.core.partition import PartitionedGraph, partition_graph
from repro.graph500.rmat import generate_edges
from repro.graph500.spec import NUM_BFS_ROOTS, Graph500Problem
from repro.graph500.validate import validate_bfs_result
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.graphs.stats import degrees_from_edges
from repro.machine.network import MachineSpec
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.mesh import ProcessMesh

__all__ = [
    "Graph500Stats",
    "Graph500Report",
    "run_graph500",
    "run_graph500_sssp",
    "sample_roots",
]


def sample_roots(
    degrees: np.ndarray, num_roots: int, *, rng: np.random.Generator
) -> np.ndarray:
    """Sample BFS search keys per the specification.

    Uniform over vertices with at least one edge, without replacement
    (the reference implementation deduplicates and resamples).

    Consumes exactly **one** draw from ``rng`` regardless of the graph's
    degree distribution or ``num_roots``: the actual selection runs on a
    child generator seeded by that draw.  ``rng.choice`` would consume a
    candidate-count-dependent number of draws, so anything sequenced
    after root sampling (fault injection, workload seeding) would see a
    generator state that shifts with graph shape — this keeps plain,
    ``--faults``, and ``--batch-roots`` runs root-identical from
    ``seed`` alone.
    """
    candidates = np.flatnonzero(degrees > 0)
    if candidates.size == 0:
        raise ValueError("graph has no non-isolated vertices to sample roots from")
    k = min(num_roots, candidates.size)
    child = np.random.default_rng(int(rng.integers(0, 2**63 - 1)))
    return child.choice(candidates, size=k, replace=False).astype(np.int64)


@dataclass(frozen=True)
class Graph500Stats:
    """The specification's summary statistics over a sample."""

    minimum: float
    firstquartile: float
    median: float
    thirdquartile: float
    maximum: float
    mean: float
    stddev: float

    @classmethod
    def of(cls, values: np.ndarray) -> "Graph500Stats":
        v = np.asarray(values, dtype=np.float64)
        if v.size == 0:
            raise ValueError("cannot summarize an empty sample")
        q1, med, q3 = np.percentile(v, [25, 50, 75])
        return cls(
            minimum=float(v.min()),
            firstquartile=float(q1),
            median=float(med),
            thirdquartile=float(q3),
            maximum=float(v.max()),
            mean=float(v.mean()),
            stddev=float(v.std(ddof=1)) if v.size > 1 else 0.0,
        )


def harmonic_mean_stats(values: np.ndarray) -> tuple[float, float]:
    """Harmonic mean and its standard error (the spec's TEPS aggregate).

    The specification computes TEPS statistics on the reciprocals:
    ``harmonic_mean = 1 / mean(1 / TEPS)`` with the standard error
    propagated from the reciprocal sample.
    """
    v = np.asarray(values, dtype=np.float64)
    if np.any(v <= 0):
        raise ValueError("TEPS values must be positive")
    recip = 1.0 / v
    hmean = 1.0 / recip.mean()
    if v.size > 1:
        stderr = recip.std(ddof=1) / np.sqrt(v.size - 1) * hmean * hmean
    else:
        stderr = 0.0
    return float(hmean), float(stderr)


@dataclass
class Graph500Report:
    """Everything a conforming run reports."""

    problem: Graph500Problem
    num_nodes: int
    construction_seconds: float
    roots: np.ndarray
    bfs_times: np.ndarray
    teps: np.ndarray
    validated: bool
    results: list[BFSRunResult] = field(repr=False, default_factory=list)
    #: Metrics registry shared by every root's BFS (``NULL_METRICS``
    #: when the run was not metered).
    metrics: object = field(default=NULL_METRICS, repr=False)
    #: Resilience accounting (``None`` for a fault-free run): injected
    #: fault/retry counts, crashes survived, checkpoints written, wasted
    #: seconds re-executed after restores.
    resilience: dict | None = field(default=None)

    @property
    def time_stats(self) -> Graph500Stats:
        return Graph500Stats.of(self.bfs_times)

    @property
    def teps_stats(self) -> Graph500Stats:
        return Graph500Stats.of(self.teps)

    @property
    def harmonic_mean_teps(self) -> float:
        return harmonic_mean_stats(self.teps)[0]

    @property
    def mean_gteps(self) -> float:
        return self.harmonic_mean_teps / 1e9

    def render(self) -> str:
        """The official-style output block."""
        t, g = self.time_stats, self.teps_stats
        hm, err = harmonic_mean_stats(self.teps)
        lines = [
            f"SCALE: {self.problem.scale}",
            f"edgefactor: {self.problem.edge_factor}",
            f"NBFS: {self.roots.size}",
            f"num_nodes (simulated): {self.num_nodes}",
            f"construction_time: {self.construction_seconds:.6e}",
            f"min_time: {t.minimum:.6e}",
            f"firstquartile_time: {t.firstquartile:.6e}",
            f"median_time: {t.median:.6e}",
            f"thirdquartile_time: {t.thirdquartile:.6e}",
            f"max_time: {t.maximum:.6e}",
            f"mean_time: {t.mean:.6e}",
            f"stddev_time: {t.stddev:.6e}",
            f"min_TEPS: {g.minimum:.6e}",
            f"firstquartile_TEPS: {g.firstquartile:.6e}",
            f"median_TEPS: {g.median:.6e}",
            f"thirdquartile_TEPS: {g.thirdquartile:.6e}",
            f"max_TEPS: {g.maximum:.6e}",
            f"harmonic_mean_TEPS: {hm:.6e}",
            f"harmonic_stddev_TEPS: {err:.6e}",
            f"validation: {'PASSED' if self.validated else 'FAILED'}",
        ]
        return "\n".join(lines)


def run_graph500(
    scale: int,
    rows: int,
    cols: int,
    *,
    seed: int = 1,
    num_roots: int = NUM_BFS_ROOTS,
    e_threshold: int | None = None,
    h_threshold: int | None = None,
    machine: MachineSpec | None = None,
    config_overrides: dict | None = None,
    validate: bool = True,
    construction_seconds: float | None = None,
    tracer: Tracer | None = None,
    metrics=None,
    faults=None,
    checkpoint_every: int = 0,
    max_restarts: int = 3,
    recovery_mode: str = "restart",
    batch_roots: bool = False,
    backend=None,
) -> Graph500Report:
    """Run the full Graph500 benchmark flow on the simulated machine.

    Parameters
    ----------
    scale, rows, cols:
        Problem SCALE and simulated mesh shape.
    num_roots:
        BFS roots (64 for a conforming run; fewer for quick checks).
    e_threshold, h_threshold:
        Partition thresholds; default from the per-scale tuning table.
    validate:
        Run the five spec checks on every root's output (slow but
        conforming).
    construction_seconds:
        Override the kernel-1 time (e.g. from a
        :func:`repro.core.preprocessing.preprocess` report); defaults to
        the modeled construction estimate.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` recording the run as a
        span tree (generate / construction / per-root BFS + validate /
        harvest); export it with :mod:`repro.obs.export`.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` accumulating
        the aggregate metric families across every root's BFS; build a
        :class:`~repro.obs.report.RunReport` from the returned report
        with :func:`repro.obs.report.report_from_graph500`.
    faults:
        Optional fault description — a spec string (see
        :func:`repro.resilience.faults.parse_fault_spec`), a parsed
        :class:`~repro.resilience.faults.FaultPlan`, or a ready
        :class:`~repro.resilience.faults.FaultInjector`.  The injector
        draws from the *same* seeded generator as root sampling, so a
        faulty run is bit-reproducible from ``seed`` alone.
    checkpoint_every:
        Snapshot traversal state every N completed levels (0 disables);
        write costs are charged to each root's ledger.
    max_restarts, recovery_mode:
        :class:`~repro.resilience.recovery.RecoveryPolicy` knobs applied
        when a crash fault fires (``restart`` or ``degrade``).
    batch_roots:
        Run the sampled roots through the multi-source batch engine
        (:class:`~repro.serve.msbfs.MultiSourceBFS`, up to 64 roots per
        traversal) instead of one sequential BFS per root.  Parent
        arrays are bit-identical to the sequential path; reported
        per-root times are each root's amortized share of its batch.
        Incompatible with ``checkpoint_every`` (no per-root checkpoints
        inside a shared wave) and with ``recovery_mode='degrade'``
        (batch recovery is restart-only).
    """
    from repro.analysis.experiments import tuned_thresholds

    tracer = tracer if tracer is not None else NULL_TRACER
    problem = Graph500Problem(scale=scale)
    if e_threshold is None or h_threshold is None:
        e_threshold, h_threshold = tuned_thresholds(scale)

    rng = np.random.default_rng(seed)
    with tracer.span("generate", category="phase", scale=scale):
        src, dst = generate_edges(scale, seed=seed)
    p = rows * cols
    if machine is None:
        machine = MachineSpec(
            num_nodes=p, nodes_per_supernode=cols
        ).scaled_for(src.size / p)
    mesh = ProcessMesh(rows, cols, machine=machine)

    with tracer.span("construction", category="phase") as kernel1:
        part = partition_graph(
            src, dst, problem.num_vertices, mesh,
            e_threshold=e_threshold, h_threshold=h_threshold,
        )
        if construction_seconds is None:
            from repro.core.preprocessing import estimate_construction_seconds

            construction_seconds = estimate_construction_seconds(part, machine)
        # Advance the simulated timeline past kernel 1 so the per-root BFS
        # spans start where a real run's would.
        tracer.charge("kernel1", category="construction",
                      sim_seconds=construction_seconds)
        kernel1.attrs["seconds"] = construction_seconds

    kwargs = dict(e_threshold=e_threshold, h_threshold=h_threshold)
    kwargs.update(config_overrides or {})
    config = BFSConfig(**kwargs)
    if batch_roots:
        if checkpoint_every:
            raise ValueError(
                "batch_roots does not support checkpointing (no per-root "
                "checkpoints inside a shared wave)"
            )
        if recovery_mode != "restart":
            raise ValueError("batch_roots recovery is restart-only")
        from repro.serve.msbfs import MultiSourceBFS

        engine = MultiSourceBFS(
            part, machine=machine, config=config, tracer=tracer,
            metrics=metrics, backend=backend,
        )
    else:
        engine = DistributedBFS(
            part, machine=machine, config=config, tracer=tracer,
            metrics=metrics, backend=backend,
        )

    # Resilience setup: the injector shares the run's one seeded rng
    # (the generator root sampling draws from next), so ``seed`` alone
    # makes an entire faulty run bit-reproducible.
    injector = None
    checkpointer = None
    policy = None
    if faults is not None or checkpoint_every:
        from repro.resilience import (
            FaultInjector,
            LevelCheckpointer,
            RecoveryPolicy,
        )

        registry = metrics if metrics is not None else NULL_METRICS
        if faults is not None:
            injector = (
                faults
                if isinstance(faults, FaultInjector)
                else FaultInjector(faults, rng=rng, metrics=registry)
            )
            injector.plan.validate(p)
        checkpointer = LevelCheckpointer(
            every=checkpoint_every, mesh=mesh, metrics=registry
        )
        policy = RecoveryPolicy(max_restarts=max_restarts, mode=recovery_mode)

    degrees = part.degrees
    roots = sample_roots(degrees, num_roots, rng=rng)

    graph = None
    if validate:
        graph = build_csr(*symmetrize_edges(src, dst), problem.num_vertices)

    times, teps, results = [], [], []
    all_valid = True
    crashes = restarts = 0
    wasted_seconds = 0.0
    excised_total = 0
    if batch_roots:
        from repro.serve.msbfs import (
            MAX_BATCH_ROOTS,
            run_batch_with_recovery,
        )

        per_root = []
        for start in range(0, roots.size, MAX_BATCH_ROOTS):
            chunk = roots[start : start + MAX_BATCH_ROOTS]
            with tracer.span(
                "batch", category="bfs_batch", num_roots=int(chunk.size)
            ):
                if injector is None:
                    batch = engine.run_batch(chunk)
                else:
                    recovered = run_batch_with_recovery(
                        engine, chunk, faults=injector, policy=policy,
                        metrics=metrics if metrics is not None else NULL_METRICS,
                    )
                    batch = recovered.result
                    crashes += recovered.crashes
                    restarts += recovered.crashes
                    wasted_seconds += recovered.wasted_seconds
            for lane in range(chunk.size):
                # The batch ledger rides on exactly one lane so summing
                # per-root ledgers counts the shared traversal once.
                per_root.append(
                    batch.per_root_result(lane, share_ledger=(lane == 0))
                )
        for res in per_root:
            if validate:
                with tracer.span("validate", category="phase", root=res.root):
                    try:
                        validate_bfs_result(
                            graph, res.root, res.parent,
                            edge_src=src, edge_dst=dst,
                        )
                    except AssertionError:
                        all_valid = False
            times.append(res.total_seconds)
            teps.append(problem.num_edges / res.total_seconds)
            results.append(res)
        roots_iter = []
    else:
        roots_iter = roots
    for root in roots_iter:
        with tracer.span("root", category="bfs_root", root=int(root)):
            if injector is None and checkpointer is None:
                res = engine.run(int(root))
                excised = np.array([], dtype=np.int64)
            else:
                from repro.resilience import run_with_recovery

                checkpointer.clear()  # snapshots never outlive their root
                recovered = run_with_recovery(
                    engine, int(root),
                    faults=injector if injector is not None else None,
                    checkpointer=checkpointer,
                    policy=policy,
                    metrics=metrics if metrics is not None else NULL_METRICS,
                )
                res = recovered.result
                crashes += recovered.crashes
                restarts += recovered.restarts
                wasted_seconds += recovered.wasted_seconds
                excised = recovered.excised
                excised_total += int(excised.size)
            if validate:
                with tracer.span("validate", category="phase", root=int(root)):
                    try:
                        if excised.size:
                            from repro.resilience import validate_partial

                            validate_partial(
                                graph, int(root), res.parent, excised
                            )
                        else:
                            validate_bfs_result(
                                graph, int(root), res.parent,
                                edge_src=src, edge_dst=dst,
                            )
                    except AssertionError:
                        all_valid = False
        times.append(res.total_seconds)
        teps.append(problem.num_edges / res.total_seconds)
        results.append(res)

    resilience = None
    if injector is not None or checkpoint_every:
        resilience = {
            "crashes": crashes,
            "restarts": restarts,
            "wasted_seconds": wasted_seconds,
            "excised_vertices": excised_total,
            "checkpoint_every": checkpoint_every,
            "recovery_mode": recovery_mode,
        }
        if injector is not None:
            resilience.update(injector.summary())

    with tracer.span("harvest", category="phase", num_roots=int(roots.size)):
        return Graph500Report(
            problem=problem,
            num_nodes=p,
            construction_seconds=construction_seconds,
            roots=roots,
            bfs_times=np.array(times),
            teps=np.array(teps),
            validated=all_valid,
            results=results,
            metrics=metrics if metrics is not None else NULL_METRICS,
            resilience=resilience,
        )


def run_graph500_sssp(
    scale: int,
    rows: int,
    cols: int,
    *,
    seed: int = 1,
    num_roots: int = NUM_BFS_ROOTS,
    e_threshold: int | None = None,
    h_threshold: int | None = None,
    machine: MachineSpec | None = None,
    validate: bool = True,
    algorithm: str = "delta-stepping",
    backend=None,
) -> Graph500Report:
    """The benchmark's SSSP kernel over sampled roots.

    Mirrors :func:`run_graph500` with the weighted kernel: uniform [0, 1)
    edge weights per the specification, delta-stepping (or Bellman-Ford)
    over the 1.5D partitioning, and the kernel-3 optimality-certificate
    validation on every root.
    """
    from repro.analysis.experiments import tuned_thresholds
    from repro.core import delta_stepping_sssp, generate_weights
    from repro.core import sssp as bellman_ford
    from repro.graph500.validate_sssp import validate_sssp_result

    if algorithm not in ("delta-stepping", "bellman-ford"):
        raise ValueError(f"unknown SSSP algorithm {algorithm!r}")
    problem = Graph500Problem(scale=scale)
    if e_threshold is None or h_threshold is None:
        e_threshold, h_threshold = tuned_thresholds(scale)

    rng = np.random.default_rng(seed)
    src, dst = generate_edges(scale, seed=seed)
    weights = generate_weights(src.size, seed=seed + 1)
    p = rows * cols
    if machine is None:
        machine = MachineSpec(
            num_nodes=p, nodes_per_supernode=cols
        ).scaled_for(src.size / p)
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(
        src, dst, problem.num_vertices, mesh,
        e_threshold=e_threshold, h_threshold=h_threshold,
    )
    from repro.core.preprocessing import estimate_construction_seconds

    construction = estimate_construction_seconds(part, machine)
    roots = sample_roots(part.degrees, num_roots, rng=rng)

    times, teps = [], []
    all_valid = True
    for root in roots:
        if algorithm == "delta-stepping":
            res = delta_stepping_sssp(
                part, int(root), weights, src, dst, machine=machine,
                backend=backend,
            )
        else:
            res = bellman_ford(
                part, int(root), weights, edge_src=src, edge_dst=dst,
                machine=machine, backend=backend,
            )
        if validate:
            try:
                validate_sssp_result(
                    problem.num_vertices, src, dst, weights,
                    int(root), res.distance, res.parent,
                )
            except AssertionError:
                all_valid = False
        times.append(res.total_seconds)
        teps.append(problem.num_edges / res.total_seconds)

    return Graph500Report(
        problem=problem,
        num_nodes=p,
        construction_seconds=construction,
        roots=roots,
        bfs_times=np.array(times),
        teps=np.array(teps),
        validated=all_valid,
        results=[],
    )
