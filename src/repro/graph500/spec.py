"""Graph500 specification constants and problem descriptor.

The benchmark (Murphy et al., "Introducing the Graph 500") generates a
Kronecker graph with ``2**SCALE`` vertices and ``edgefactor * 2**SCALE``
undirected edges using the R-MAT recursive quadrant model with the
probabilities below, then measures traversed edges per second for BFS from
64 random roots.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RMAT_A",
    "RMAT_B",
    "RMAT_C",
    "RMAT_D",
    "DEFAULT_EDGE_FACTOR",
    "NUM_BFS_ROOTS",
    "Graph500Problem",
]

#: R-MAT quadrant probabilities fixed by the Graph500 specification.
RMAT_A = 0.57
RMAT_B = 0.19
RMAT_C = 0.19
RMAT_D = 1.0 - (RMAT_A + RMAT_B + RMAT_C)  # = 0.05

#: Undirected edges per vertex fixed by the specification.
DEFAULT_EDGE_FACTOR = 16

#: Number of random BFS roots a conforming run averages over.
NUM_BFS_ROOTS = 64


@dataclass(frozen=True)
class Graph500Problem:
    """A Graph500 problem instance descriptor.

    The paper's headline run is ``Graph500Problem(scale=44)``: 2^44 ≈ 17.6
    trillion vertices and 16 * 2^44 ≈ 281 trillion undirected edges.  The
    reproduction runs laptop-feasible scales (16-24) and relies on R-MAT's
    self-similarity for shape fidelity (see DESIGN.md §2).
    """

    scale: int
    edge_factor: int = DEFAULT_EDGE_FACTOR

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.edge_factor < 1:
            raise ValueError(f"edge_factor must be >= 1, got {self.edge_factor}")

    @property
    def num_vertices(self) -> int:
        """Vertex count 2**scale."""
        return 1 << self.scale

    @property
    def num_edges(self) -> int:
        """Undirected edge count edgefactor * 2**scale (before dedup)."""
        return self.edge_factor << self.scale

    def gteps(self, seconds: float) -> float:
        """Giga-traversed-edges-per-second for a BFS time on this problem.

        Graph500 counts the number of *input* edges (edgefactor * 2^scale)
        regardless of duplicates or self loops.
        """
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        return self.num_edges / seconds / 1e9
