"""Graph500 benchmark substrate.

Implements the pieces of the Graph500 specification the paper relies on:

- :mod:`repro.graph500.spec` — benchmark constants (R-MAT probabilities,
  edge factor, vertex/edge counts per SCALE).
- :mod:`repro.graph500.rmat` — the Kronecker/R-MAT edge generator with
  vertex scrambling.
- :mod:`repro.graph500.reference` — serial level-synchronous BFS and
  Beamer-style direction-optimizing BFS used as ground truth.
- :mod:`repro.graph500.validate` — the specification's BFS output
  validation (tree edges exist, levels consistent, reachability complete).
"""

from repro.graph500.rmat import generate_edges, rmat_edges, scramble_vertices
from repro.graph500.reference import (
    bfs_levels_from_parents,
    direction_optimizing_bfs,
    serial_bfs,
)
from repro.graph500.spec import (
    DEFAULT_EDGE_FACTOR,
    RMAT_A,
    RMAT_B,
    RMAT_C,
    RMAT_D,
    Graph500Problem,
)
from repro.graph500.driver import (
    Graph500Report,
    Graph500Stats,
    run_graph500,
    run_graph500_sssp,
    sample_roots,
)
from repro.graph500.validate import ValidationError, validate_bfs_result
from repro.graph500.validate_sssp import validate_sssp_result

__all__ = [
    "Graph500Report",
    "Graph500Stats",
    "run_graph500",
    "run_graph500_sssp",
    "sample_roots",
    "validate_sssp_result",
    "DEFAULT_EDGE_FACTOR",
    "RMAT_A",
    "RMAT_B",
    "RMAT_C",
    "RMAT_D",
    "Graph500Problem",
    "generate_edges",
    "rmat_edges",
    "scramble_vertices",
    "serial_bfs",
    "direction_optimizing_bfs",
    "bfs_levels_from_parents",
    "validate_bfs_result",
    "ValidationError",
]
