"""The admission-controlled traversal service.

A synchronous core (the :class:`~repro.serve.msbfs.MultiSourceBFS`
engine, run on an executor thread) behind an asyncio front:

1. **Admission.**  :meth:`TraversalService.submit` answers from the
   :class:`~repro.serve.cache.ResultCache` when it can; otherwise the
   request enters a *bounded* queue.  A full queue sheds the request
   with a typed :class:`Overloaded` — the queue can never grow without
   bound, and shedding is an exception the client handles, not a
   dropped future.
2. **Batching.**  A single flusher coroutine assembles batches: flush
   when ``batch_size`` distinct roots are pending or when the oldest
   request has waited ``batch_window`` seconds.  Duplicate roots share
   one lane.
3. **Traversal.**  The batch runs as one multi-source wave sequence on
   the executor; every lane's parent tree is bit-identical to a
   sequential run, so serving batched is *not* an approximation.
4. **Resilience.**  A mid-batch injected rank crash fails only that
   batch: its requests are replayed from the front of the queue (up to
   ``max_replays`` times), after which they fail with a typed
   :class:`TraversalError`.  Other batches are untouched.

Latency is observed per request into ``serve_latency_seconds`` — one
histogram per ``stage`` label: ``queue`` (submit → popped into a forming
batch), ``batch`` (popped → traversal start, the batching-window cost),
``traversal`` (engine wall time), ``total`` (submit → resolve).

Every request is also assigned a **trace id** (``req-000001``, ...) at
admission.  The id rides on the response, keys a bounded ring of
:class:`RequestTimeline` records retrievable via
:meth:`TraversalService.request_timeline`, and — when the service was
built with a ``tracer`` — is merged into the scheduler's ``msbfs`` span
attrs, so the Chrome trace renders each served batch on a per-request
track.  A timeline's ``total_seconds`` is the *same float* observed
into ``serve_latency_seconds{stage="total"}``, so the two surfaces
always reconcile.
"""

from __future__ import annotations

import asyncio
import functools
import time
from collections import OrderedDict, deque
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.obs.metrics import NULL_METRICS, exponential_buckets
from repro.obs.tracer import NULL_TRACER
from repro.resilience.faults import RankCrashError
from repro.serve.cache import ResultCache, fingerprint_graph

__all__ = [
    "IngestReport",
    "Overloaded",
    "TraversalError",
    "TraversalResponse",
    "TraversalService",
    "ServeStats",
    "LatencyReservoir",
    "RequestTimeline",
    "LATENCY_BUCKETS",
]

#: Sub-microsecond to ~9-minute wall-latency buckets.
LATENCY_BUCKETS = exponential_buckets(1e-6, 2.0, 40)


class LatencyReservoir:
    """Fixed-size uniform sample of an unbounded latency stream.

    Vitter's Algorithm R: the first ``capacity`` values are kept, after
    which each new value replaces a random slot with probability
    ``capacity / seen`` — at any point the kept set is a uniform sample
    of everything appended, so percentiles stay stable under sustained
    traffic while memory stays O(capacity).  The RNG is seeded, so a
    replayed request sequence samples identically.
    """

    __slots__ = ("capacity", "_values", "_seen", "_rng")

    def __init__(self, capacity: int = 4096, *, seed: int = 0x5EED) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._values: list[float] = []
        self._seen = 0
        self._rng = np.random.default_rng(seed)

    def append(self, value: float) -> None:
        self._seen += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        slot = int(self._rng.integers(0, self._seen))
        if slot < self.capacity:
            self._values[slot] = float(value)

    @property
    def seen(self) -> int:
        """Values ever appended (``>= len(self)``)."""
        return self._seen

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __array__(self, dtype=None, copy=None):
        return np.asarray(self._values, dtype=dtype)


class Overloaded(RuntimeError):
    """Typed admission-control rejection: the request queue is full.

    Clients treat this as backpressure — back off and retry; the request
    was never enqueued.  The rejection is *attributable*: it carries the
    tenant id (multi-tenant serving; ``""`` for a single-graph service)
    and the shed request's trace id, so shed counts in logs and workload
    reports can be pinned to a tenant and a specific request.
    """

    def __init__(
        self,
        queue_depth: int,
        limit: int,
        *,
        tenant: str = "",
        trace_id: str = "",
    ) -> None:
        detail = ""
        if tenant:
            detail += f" tenant={tenant}"
        if trace_id:
            detail += f" trace={trace_id}"
        super().__init__(
            f"request queue full ({queue_depth}/{limit}); request shed"
            + (f" [{detail.strip()}]" if detail else "")
        )
        self.queue_depth = queue_depth
        self.limit = limit
        self.tenant = tenant
        self.trace_id = trace_id


class TraversalError(RuntimeError):
    """A batch exhausted its replay budget; its requests failed.

    Like :class:`Overloaded`, the failure carries the tenant id and the
    failed request's trace id for attribution.
    """

    def __init__(
        self, message: str, *, tenant: str = "", trace_id: str = ""
    ) -> None:
        detail = ""
        if tenant:
            detail += f" tenant={tenant}"
        if trace_id:
            detail += f" trace={trace_id}"
        super().__init__(message + (f" [{detail.strip()}]" if detail else ""))
        self.tenant = tenant
        self.trace_id = trace_id


@dataclass
class RequestTimeline:
    """Staged wall-clock breakdown of one served request, by trace id.

    ``total_seconds`` is exactly the value observed into
    ``serve_latency_seconds{stage="total"}`` for this request (cache
    hits observe only ``total``; failed requests observe nothing and
    record zeros here).
    """

    trace_id: str
    root: int
    program: str = "bfs"
    #: ``completed`` | ``cached`` | ``failed``
    status: str = "completed"
    batch_lanes: int = 0
    queue_seconds: float = 0.0
    batch_seconds: float = 0.0
    traversal_seconds: float = 0.0
    total_seconds: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class TraversalResponse:
    """One served query."""

    root: int
    #: Request-scoped trace id (keys :meth:`TraversalService.request_timeline`).
    trace_id: str = ""
    #: Owning tenant in multi-tenant serving ("" for a single-graph service).
    tenant: str = ""
    parent: np.ndarray | None = field(repr=False, default=None)
    cached: bool = False
    #: Lanes in the batch that served it (0 for cache hits).
    batch_lanes: int = 0
    #: Wall-clock stage latencies (seconds).
    queue_wait: float = 0.0
    batch_wait: float = 0.0
    traversal_seconds: float = 0.0
    total_seconds: float = 0.0
    #: Amortized *simulated* machine cost of the query (0 for cache hits).
    sim_seconds: float = 0.0
    #: Which registered program served the query ("bfs" for traversals).
    program: str = "bfs"
    #: Non-BFS programs: the program's state arrays and info scalars.
    state: dict | None = field(repr=False, default=None)
    info: dict | None = None
    iterations: int = 0
    converged: bool = True


@dataclass
class ServeStats:
    """Service-lifetime counters (wall latencies in seconds)."""

    requests: int = 0
    admitted: int = 0
    completed: int = 0
    cache_hits: int = 0
    shed: int = 0
    failed: int = 0
    replays: int = 0
    batches: int = 0
    batched_lanes: int = 0
    #: Non-BFS vertex-program queries served (subset of ``completed``).
    program_runs: int = 0
    sim_seconds_total: float = 0.0
    #: Bounded uniform sample of per-request total latencies — the
    #: percentile source.  Appends like a list; never grows past its
    #: capacity under sustained traffic.
    total_latencies: LatencyReservoir = field(
        default_factory=LatencyReservoir, repr=False
    )

    @property
    def mean_batch_size(self) -> float:
        return self.batched_lanes / self.batches if self.batches else 0.0

    @property
    def sim_seconds_per_query(self) -> float:
        return (
            self.sim_seconds_total / self.completed if self.completed else 0.0
        )

    def latency_percentile(self, q: float) -> float:
        """Percentile ``q`` of sampled total latencies, or ``nan`` when
        the reservoir is empty (an idle tenant has no latencies; report
        builders render ``nan`` rather than crash or fake a zero)."""
        if not len(self.total_latencies):
            return float("nan")
        return float(np.percentile(np.asarray(self.total_latencies), q))

    @property
    def p50_seconds(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99_seconds(self) -> float:
        return self.latency_percentile(99)

    @property
    def cache_hit_rate(self) -> float:
        served = self.cache_hits + self.completed
        return self.cache_hits / served if served else 0.0


@dataclass
class IngestReport:
    """Outcome of one :meth:`TraversalService.ingest_updates` call."""

    #: Per-batch :class:`~repro.dynamic.repair.RepairReport` objects.
    reports: list = field(repr=False, default_factory=list)
    num_batches: int = 0
    num_updates: int = 0
    #: Cache entries evicted because the delta touched their tree.
    cache_evicted: int = 0
    #: Cache entries carried over to the repaired graph's fingerprint.
    cache_rekeyed: int = 0
    old_fingerprint: str = ""
    new_fingerprint: str = ""


@dataclass
class _Request:
    root: int
    future: asyncio.Future = field(repr=False)
    submitted_at: float
    trace_id: str = ""
    popped_at: float = 0.0
    attempts: int = 0


_DEFAULT_CACHE = object()


class TraversalService:
    """Batched BFS serving over one loaded graph."""

    def __init__(
        self,
        engine,
        *,
        cache=_DEFAULT_CACHE,
        queue_depth: int = 256,
        batch_size: int = 64,
        batch_window: float = 0.002,
        max_replays: int = 2,
        faults=None,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
        clock=time.monotonic,
        timeline_capacity: int = 1024,
        dynamic=None,
    ) -> None:
        from repro.serve.msbfs import MAX_BATCH_ROOTS

        if not 1 <= batch_size <= MAX_BATCH_ROOTS:
            raise ValueError(f"batch_size must be in [1, {MAX_BATCH_ROOTS}]")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        self.engine = engine
        self.queue_depth = int(queue_depth)
        self.batch_size = int(batch_size)
        self.batch_window = float(batch_window)
        self.max_replays = int(max_replays)
        self._faults = faults
        self._metrics = metrics
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._clock = clock
        # Request-scoped tracing: a monotonic trace-id sequence and a
        # bounded (oldest-evicted) trace_id -> RequestTimeline ring.
        self._trace_seq = 0
        self._timeline_capacity = int(timeline_capacity)
        self._timelines: "OrderedDict[str, RequestTimeline]" = OrderedDict()
        self._cache = (
            ResultCache(metrics=metrics) if cache is _DEFAULT_CACHE else cache
        )
        self._fingerprint = fingerprint_graph(engine.part)
        self._queue: deque[_Request] = deque()
        self._wake = asyncio.Event()
        self._flusher: asyncio.Task | None = None
        self._closed = True
        self.stats = ServeStats()
        # Non-BFS program serving: single executions bypass the MSBFS
        # batcher but share the admission bound (queue + in-flight) and
        # get their own result cache (program outputs are state dicts,
        # not parent arrays).
        self._inflight_programs = 0
        self._program_engine = None
        self._program_cache: "OrderedDict[tuple, dict]" = OrderedDict()
        self._program_cache_capacity = 256
        # Streaming ingestion: an IncrementalGraph whose live edge set
        # this service serves.  Update batches applied through
        # ingest_updates() repair it in place, rebuild the engine over
        # the repaired partition, and partially invalidate the cache.
        self._dynamic = dynamic
        self._ingest_lock = asyncio.Lock()

    @property
    def graph_fingerprint(self) -> str:
        return self._fingerprint

    def _next_trace_id(self) -> str:
        self._trace_seq += 1
        return f"req-{self._trace_seq:06d}"

    def _record_timeline(self, timeline: RequestTimeline) -> None:
        self._timelines[timeline.trace_id] = timeline
        while len(self._timelines) > self._timeline_capacity:
            self._timelines.popitem(last=False)

    def request_timeline(self, trace_id: str) -> RequestTimeline | None:
        """The staged timeline of a recently served request, or ``None``
        once it aged out of the bounded ring (or never existed)."""
        return self._timelines.get(trace_id)

    @property
    def pending(self) -> int:
        return len(self._queue) + self._inflight_programs

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        if self._flusher is not None:
            raise RuntimeError("service already started")
        self._closed = False
        self._wake = asyncio.Event()
        self._flusher = asyncio.create_task(self._flush_loop())

    async def stop(self) -> None:
        """Drain the queue, finish in-flight batches, stop the flusher."""
        self._closed = True
        self._wake.set()
        if self._flusher is not None:
            await self._flusher
            self._flusher = None

    async def __aenter__(self) -> "TraversalService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def reload_graph(self, engine) -> None:
        """Swap the served graph; cached results of the old generation
        are invalidated (the fingerprint changes with the graph)."""
        old = self._fingerprint
        self.engine = engine
        self._fingerprint = fingerprint_graph(engine.part)
        if self._cache is not None:
            self._cache.invalidate(old)
        self._program_engine = None
        self._program_cache.clear()

    # ------------------------------------------------------------------
    # streaming ingestion
    # ------------------------------------------------------------------

    @property
    def dynamic(self):
        """The attached :class:`~repro.dynamic.repair.IncrementalGraph`
        (``None`` for statically served graphs)."""
        return self._dynamic

    def _rebuild_engine(self, part):
        """A fresh MSBFS engine over a repaired partition, mirroring the
        current engine's machine/config/metrics/backend."""
        from repro.serve.msbfs import MultiSourceBFS

        src = self.engine
        return MultiSourceBFS(
            part,
            machine=getattr(src, "machine", None),
            config=src.config,
            tracer=getattr(src, "tracer", None),
            metrics=getattr(src, "metrics", None),
            backend=getattr(getattr(src, "scheduler", None), "backend", None),
        )

    async def ingest_updates(self, batches) -> IngestReport:
        """Apply edge-update batches to the served graph, live.

        Requires the service to have been built with
        ``dynamic=IncrementalGraph(...)`` over the same edge set as the
        engine.  Each batch is repaired incrementally on the executor —
        in-flight query batches keep running against the old engine
        while repair proceeds — then the engine swap, fingerprint bump
        and cache delta are applied atomically between query batches
        (no awaits once the new engine exists).  The cache is *partially*
        invalidated: only entries whose parent tree intersects the
        delta's touched vertices are evicted; the rest are re-keyed to
        the repaired graph and keep serving.

        Ingestions are serialized by an internal lock; queries are not
        blocked by it.
        """
        if self._dynamic is None:
            raise RuntimeError(
                "service was not built with a dynamic graph "
                "(pass dynamic=IncrementalGraph(...))"
            )
        loop = asyncio.get_running_loop()
        async with self._ingest_lock:
            reports = []
            num_updates = 0
            for batch in batches:
                report = await loop.run_in_executor(
                    None, self._dynamic.apply_batch, batch
                )
                reports.append(report)
                num_updates += batch.size
                self._metrics.counter("serve_ingest_batches").inc()
                self._metrics.counter("serve_ingest_updates").inc(batch.size)
            # graph() compacts pending overlays into the packed arrays.
            part = await loop.run_in_executor(None, self._dynamic.graph)
            engine = await loop.run_in_executor(
                None, self._rebuild_engine, part
            )
            touched = (
                np.unique(np.concatenate([r.delta.touched for r in reports]))
                if reports
                else np.array([], dtype=np.int64)
            )
            old_fp = self._fingerprint
            new_fp = fingerprint_graph(part)
            # Atomic from here: no awaits between swap and cache delta.
            self.engine = engine
            self._fingerprint = new_fp
            self._program_engine = None
            self._program_cache.clear()
            evicted = rekeyed = 0
            if self._cache is not None:
                if hasattr(self._cache, "apply_delta"):
                    evicted, rekeyed = self._cache.apply_delta(
                        old_fp, new_fp, touched
                    )
                else:
                    evicted = self._cache.invalidate(old_fp)
            return IngestReport(
                reports=reports,
                num_batches=len(reports),
                num_updates=num_updates,
                cache_evicted=evicted,
                cache_rekeyed=rekeyed,
                old_fingerprint=old_fp,
                new_fingerprint=new_fp,
            )

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------

    async def submit(
        self, root: int | None = None, *, program: str = "bfs", **params
    ) -> TraversalResponse:
        """Serve one query.

        ``program="bfs"`` (the default) is the batched traversal path
        and requires ``root``.  Any other registered program name runs
        as a single execution on the executor — see
        :meth:`_submit_program` — with ``params`` forwarded to
        :func:`~repro.core.programs.build_program` (SSSP programs are
        served with unit weights; the service holds no weight table).

        Raises :class:`Overloaded` when the queue is full (admission
        control) and :class:`TraversalError` when the query's batch
        exhausted its crash-replay budget.
        """
        if self._closed:
            raise RuntimeError("service is not running")
        if program != "bfs":
            return await self._submit_program(program, root, params)
        if params:
            raise ValueError(
                f"bfs queries take no parameters (got {sorted(params)})"
            )
        if root is None:
            raise ValueError("bfs queries require a root")
        root = int(root)
        if not 0 <= root < self.engine.num_vertices:
            raise ValueError(f"root {root} out of range")
        t0 = self._clock()
        trace_id = self._next_trace_id()
        self.stats.requests += 1
        if self._cache is not None:
            parent = self._cache.get(self._fingerprint, root)
            if parent is not None:
                self.stats.cache_hits += 1
                total = self._clock() - t0
                self.stats.total_latencies.append(total)
                self._metrics.counter("serve_requests", outcome="cached").inc()
                self._observe("total", total)
                self._record_timeline(
                    RequestTimeline(
                        trace_id=trace_id,
                        root=root,
                        status="cached",
                        total_seconds=total,
                    )
                )
                return TraversalResponse(
                    root=root,
                    trace_id=trace_id,
                    parent=parent,
                    cached=True,
                    total_seconds=total,
                )
        if len(self._queue) >= self.queue_depth:
            self.stats.shed += 1
            self._metrics.counter("serve_requests", outcome="shed").inc()
            raise Overloaded(
                len(self._queue), self.queue_depth, trace_id=trace_id
            )
        future = asyncio.get_running_loop().create_future()
        request = _Request(
            root=root, future=future, submitted_at=t0, trace_id=trace_id
        )
        self._queue.append(request)
        self.stats.admitted += 1
        self._metrics.gauge("serve_queue_depth").set(len(self._queue))
        self._wake.set()
        return await future

    # ------------------------------------------------------------------
    # vertex-program serving (single execution, no batching)
    # ------------------------------------------------------------------

    def _resolve_program_engine(self):
        """The sequential 1.5D engine non-BFS programs run on, built
        lazily over the served graph (the MSBFS engine only knows the
        batched wave path)."""
        if self._program_engine is None:
            from repro.core.engine import DistributedBFS

            src = self.engine
            self._program_engine = DistributedBFS(
                src.part,
                machine=getattr(src, "machine", None),
                metrics=getattr(src, "metrics", None),
                backend=getattr(src.scheduler, "backend", None),
            )
        return self._program_engine

    async def _submit_program(
        self, program: str, root: int | None, params: dict
    ) -> TraversalResponse:
        """Serve one non-BFS program query.

        Single execution on the executor (multi-source lane batching is
        visited-bit machinery; value programs run whole-graph sweeps),
        bounded by the same ``queue_depth`` admission control as BFS
        queries — queued batch requests and in-flight program runs share
        the budget.  Default-parameter queries are answered from a
        bounded per-``(program, root)`` cache keyed alongside the graph
        fingerprint; parameterized queries always execute.
        """
        from repro.core.programs import PROGRAM_REGISTRY, build_program

        spec = PROGRAM_REGISTRY.get(program)
        if spec is None:
            names = ", ".join(sorted(PROGRAM_REGISTRY))
            raise ValueError(
                f"unknown program {program!r} (available: {names})"
            )
        if spec.needs_root:
            if root is None:
                raise ValueError(f"program {program!r} requires a root")
            root = int(root)
            if not 0 <= root < self.engine.num_vertices:
                raise ValueError(f"root {root} out of range")
        elif root is not None:
            raise ValueError(f"program {program!r} does not take a root")

        t0 = self._clock()
        trace_id = self._next_trace_id()
        self.stats.requests += 1
        cacheable = not params
        key = (self._fingerprint, program, -1 if root is None else root)
        if cacheable:
            hit = self._program_cache.get(key)
            if hit is not None:
                self._program_cache.move_to_end(key)
                self.stats.cache_hits += 1
                total = self._clock() - t0
                self.stats.total_latencies.append(total)
                self._metrics.counter("serve_requests", outcome="cached").inc()
                self._metrics.counter(
                    "serve_programs", program=program, outcome="cached"
                ).inc()
                self._observe("total", total)
                self._record_timeline(
                    RequestTimeline(
                        trace_id=trace_id,
                        root=-1 if root is None else root,
                        program=program,
                        status="cached",
                        total_seconds=total,
                    )
                )
                return TraversalResponse(
                    root=-1 if root is None else root,
                    trace_id=trace_id,
                    parent=hit["state"].get("parent"),
                    cached=True,
                    total_seconds=total,
                    program=program,
                    state=hit["state"],
                    info=hit["info"],
                    iterations=hit["iterations"],
                    converged=hit["converged"],
                )
        if self.pending >= self.queue_depth:
            self.stats.shed += 1
            self._metrics.counter("serve_requests", outcome="shed").inc()
            self._metrics.counter(
                "serve_programs", program=program, outcome="shed"
            ).inc()
            raise Overloaded(
                self.pending, self.queue_depth, trace_id=trace_id
            )

        engine = self._resolve_program_engine()
        run_params = dict(params)
        if spec.needs_root:
            run_params["root"] = root
        loop = asyncio.get_running_loop()
        self._inflight_programs += 1
        self.stats.admitted += 1
        attempts = 0
        run_kwargs = {"faults": self._faults}
        if self._tracer.enabled:
            run_kwargs["span_attrs"] = {"trace_id": trace_id}
        try:
            while True:
                prog = build_program(program, engine.part, **run_params)
                t_exec = self._clock()
                try:
                    result = await loop.run_in_executor(
                        None,
                        functools.partial(
                            engine.run_program, prog, **run_kwargs
                        ),
                    )
                    break
                except RankCrashError:
                    attempts += 1
                    self._metrics.counter(
                        "serve_programs", program=program, outcome="crashed"
                    ).inc()
                    if attempts > self.max_replays:
                        self.stats.failed += 1
                        self._metrics.counter(
                            "serve_requests", outcome="failed"
                        ).inc()
                        self._metrics.counter(
                            "serve_programs", program=program, outcome="failed"
                        ).inc()
                        self._record_timeline(
                            RequestTimeline(
                                trace_id=trace_id,
                                root=-1 if root is None else root,
                                program=program,
                                status="failed",
                            )
                        )
                        raise TraversalError(
                            f"program {program!r} query failed after "
                            f"{self.max_replays} replays (injected rank "
                            "crash)",
                            trace_id=trace_id,
                        ) from None
                    self.stats.replays += 1
                    self._metrics.counter("serve_batch_replays").inc()
        finally:
            self._inflight_programs -= 1

        t_done = self._clock()
        traversal = t_done - t_exec
        total = t_done - t0
        payload = {
            "state": result.state,
            "info": result.info,
            "iterations": result.num_iterations,
            "converged": result.converged,
        }
        if cacheable:
            self._program_cache[key] = payload
            self._program_cache.move_to_end(key)
            while len(self._program_cache) > self._program_cache_capacity:
                self._program_cache.popitem(last=False)
        self.stats.completed += 1
        self.stats.program_runs += 1
        self.stats.sim_seconds_total += result.total_seconds
        self.stats.total_latencies.append(total)
        self._metrics.counter("serve_requests", outcome="completed").inc()
        self._metrics.counter(
            "serve_programs", program=program, outcome="completed"
        ).inc()
        self._observe("traversal", traversal)
        self._observe("total", total)
        self._record_timeline(
            RequestTimeline(
                trace_id=trace_id,
                root=-1 if root is None else root,
                program=program,
                traversal_seconds=traversal,
                total_seconds=total,
            )
        )
        return TraversalResponse(
            root=-1 if root is None else root,
            trace_id=trace_id,
            parent=result.state.get("parent"),
            traversal_seconds=traversal,
            total_seconds=total,
            sim_seconds=result.total_seconds,
            program=program,
            state=result.state,
            info=result.info,
            iterations=result.num_iterations,
            converged=result.converged,
        )

    # ------------------------------------------------------------------
    # batching core
    # ------------------------------------------------------------------

    async def _next_request(self, timeout: float | None = None):
        deadline = None if timeout is None else self._clock() + timeout
        while True:
            if self._queue:
                request = self._queue.popleft()
                request.popped_at = self._clock()
                self._metrics.gauge("serve_queue_depth").set(len(self._queue))
                return request
            if self._closed:
                return None
            self._wake.clear()
            if deadline is None:
                await self._wake.wait()
                continue
            remaining = deadline - self._clock()
            if remaining <= 0:
                return None
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=remaining)
            except TimeoutError:
                return None

    async def _flush_loop(self) -> None:
        while True:
            first = await self._next_request()
            if first is None:
                return
            batch = [first]
            roots = {first.root}
            deadline = self._clock() + self.batch_window
            while len(roots) < self.batch_size:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                nxt = await self._next_request(timeout=remaining)
                if nxt is None:
                    break
                batch.append(nxt)
                roots.add(nxt.root)
            await self._execute_batch(batch)

    async def _execute_batch(self, batch: list[_Request]) -> None:
        t_exec = self._clock()
        # Captured before the executor hop: if an ingestion swaps the
        # engine mid-flight, this batch's results must be cached under
        # the generation they were computed on, not the new one.
        engine = self.engine
        fingerprint = self._fingerprint
        by_root: dict[int, list[_Request]] = {}
        for request in batch:
            by_root.setdefault(request.root, []).append(request)
        roots = np.array(sorted(by_root), dtype=np.int64)
        loop = asyncio.get_running_loop()
        run_kwargs = {"faults": self._faults}
        if self._tracer.enabled:
            trace_ids = sorted(r.trace_id for r in batch if r.trace_id)
            run_kwargs["span_attrs"] = {"trace_id": ",".join(trace_ids)}
        try:
            result = await loop.run_in_executor(
                None,
                functools.partial(engine.run_batch, roots, **run_kwargs),
            )
        except RankCrashError:
            self._metrics.counter("serve_batches", outcome="crashed").inc()
            for request in batch:
                request.attempts += 1
            if batch[0].attempts <= self.max_replays:
                # Replay the affected batch from the front of the queue;
                # requests keep their original submit time.
                self.stats.replays += 1
                self._metrics.counter("serve_batch_replays").inc()
                self._queue.extendleft(reversed(batch))
                self._metrics.gauge("serve_queue_depth").set(len(self._queue))
                self._wake.set()
                return
            self.stats.failed += len(batch)
            self._metrics.counter("serve_requests", outcome="failed").inc(
                len(batch)
            )
            for request in batch:
                self._record_timeline(
                    RequestTimeline(
                        trace_id=request.trace_id,
                        root=request.root,
                        status="failed",
                    )
                )
                if not request.future.done():
                    # One error per request so each carries its own
                    # trace id for attribution.
                    request.future.set_exception(
                        TraversalError(
                            f"batch of {len(batch)} requests failed after "
                            f"{self.max_replays} replays (injected rank "
                            "crash)",
                            trace_id=request.trace_id,
                        )
                    )
            return
        t_done = self._clock()
        traversal = t_done - t_exec
        self.stats.batches += 1
        self.stats.batched_lanes += result.num_lanes
        self._metrics.counter("serve_batches", outcome="completed").inc()
        self._metrics.histogram("serve_batch_size").observe(result.num_lanes)
        self._observe("traversal", traversal)
        lane_of = {int(r): lane for lane, r in enumerate(result.roots)}
        for root, requests in by_root.items():
            parent = result.lane_parent(lane_of[root])
            if self._cache is not None:
                self._cache.put(fingerprint, root, parent)
            for request in requests:
                queue_wait = request.popped_at - request.submitted_at
                batch_wait = t_exec - request.popped_at
                total = t_done - request.submitted_at
                self._observe("queue", queue_wait)
                self._observe("batch", batch_wait)
                self._observe("total", total)
                self.stats.completed += 1
                self.stats.sim_seconds_total += result.amortized_seconds
                self.stats.total_latencies.append(total)
                self._metrics.counter(
                    "serve_requests", outcome="completed"
                ).inc()
                self._record_timeline(
                    RequestTimeline(
                        trace_id=request.trace_id,
                        root=root,
                        batch_lanes=result.num_lanes,
                        queue_seconds=queue_wait,
                        batch_seconds=batch_wait,
                        traversal_seconds=traversal,
                        total_seconds=total,
                    )
                )
                if not request.future.done():
                    request.future.set_result(
                        TraversalResponse(
                            root=root,
                            trace_id=request.trace_id,
                            parent=parent,
                            batch_lanes=result.num_lanes,
                            queue_wait=queue_wait,
                            batch_wait=batch_wait,
                            traversal_seconds=traversal,
                            total_seconds=total,
                            sim_seconds=result.amortized_seconds,
                        )
                    )

    def _observe(self, stage: str, seconds: float) -> None:
        self._metrics.histogram(
            "serve_latency_seconds", buckets=LATENCY_BUCKETS, stage=stage
        ).observe(max(seconds, 0.0))
