"""The query-serving subsystem: batched multi-source BFS behind an
admission-controlled request queue.

Layers (each usable on its own):

- :mod:`repro.serve.msbfs` — the bit-parallel multi-source engine: up to
  64 roots per batch, one lane per root, parents bit-identical to
  sequential :class:`~repro.core.engine.DistributedBFS` runs.
- :mod:`repro.serve.cache` — the (graph fingerprint, root) result cache
  with LRU + TTL eviction and hit/miss/eviction metrics.
- :mod:`repro.serve.service` — the asyncio-fronted
  :class:`~repro.serve.service.TraversalService`: bounded queue,
  batching window, typed ``Overloaded`` shedding, latency histograms,
  crash replay.
- :mod:`repro.serve.workload` — the seeded closed-loop client generator
  the CI smoke and benchmarks drive the service with.
- :mod:`repro.serve.telemetry` — the live scrape surface: an asyncio
  HTTP endpoint exposing ``/metrics`` (Prometheus text), ``/healthz``,
  ``/slo``, ``/timeline``, and per-request ``/trace/<id>``.
"""

from repro.serve.cache import ResultCache, fingerprint_graph
from repro.serve.msbfs import (
    MAX_BATCH_ROOTS,
    MSBFSResult,
    MultiSourceBFS,
    run_batch_with_recovery,
)
from repro.serve.service import (
    LatencyReservoir,
    Overloaded,
    RequestTimeline,
    TraversalError,
    TraversalService,
)
from repro.serve.telemetry import TelemetryServer

__all__ = [
    "MAX_BATCH_ROOTS",
    "MSBFSResult",
    "MultiSourceBFS",
    "run_batch_with_recovery",
    "ResultCache",
    "fingerprint_graph",
    "Overloaded",
    "TraversalError",
    "TraversalService",
    "RequestTimeline",
    "LatencyReservoir",
    "TelemetryServer",
]
