"""Result cache for served traversals.

Keyed by ``(graph fingerprint, root)`` so entries can never outlive the
graph they were computed on: reloading a graph changes the fingerprint
and :meth:`ResultCache.invalidate` drops the stale generation.  Eviction
is LRU within a bounded capacity plus TTL expiry (checked lazily on
read), with every outcome counted in the shared metric families:

==========================  ============================================
family                      meaning
==========================  ============================================
``serve_cache_hits``        reads answered from cache
``serve_cache_misses``      reads that fell through to the engine
``serve_cache_evictions``   entries dropped, labeled ``reason=``
                            ``lru`` / ``ttl`` / ``invalidation``
``serve_cache_size``        current resident entries (gauge)
``serve_cache_partial_invalidations``
                            entries evicted by *partial* invalidation
                            (root-set or delta-digest), a subset of the
                            ``reason="invalidation"`` evictions
==========================  ============================================

Dynamic graphs don't need to drop the whole generation: every entry
carries a **touched-vertex digest** — a 1024-bit Bloom-style signature
of the vertices its parent tree reaches (set at :meth:`ResultCache.put`
from the parent array, or from an explicit ``touched`` set).  When an
update batch lands, :meth:`ResultCache.apply_delta` intersects each
entry's digest with the digest of the delta's touched vertices: entries
that intersect are evicted, entries that provably cannot have changed
(no touched vertex is reachable from their root, so neither an inserted
nor a deleted edge can alter the tree) are *re-keyed* to the repaired
graph's fingerprint and keep serving.  False positives in the digest
only evict more than necessary — never less.
"""

from __future__ import annotations

import hashlib
import math
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.partition import mix64
from repro.obs.metrics import NULL_METRICS

__all__ = [
    "ResultCache",
    "CacheStats",
    "fingerprint_graph",
    "touched_digest",
]

#: Words in a touched-vertex digest (16 x 64 = 1024 bits).
_DIGEST_WORDS = 16
_DIGEST_BITS = _DIGEST_WORDS * 64


def touched_digest(vertices) -> np.ndarray:
    """1024-bit Bloom-style signature of a vertex set.

    One hashed bit per vertex (splitmix64 of the id, mod 1024), packed
    into 16 ``uint64`` words.  Two sets with a common vertex always have
    intersecting digests; disjoint sets intersect only by hash collision
    — which makes digest intersection a *conservative* staleness test.
    """
    v = np.asarray(vertices, dtype=np.int64)
    digest = np.zeros(_DIGEST_WORDS, dtype=np.uint64)
    if v.size:
        bits = mix64(v.astype(np.uint64)) % np.uint64(_DIGEST_BITS)
        np.bitwise_or.at(
            digest, bits >> np.uint64(6), np.uint64(1) << (bits & np.uint64(63))
        )
    return digest


def _digests_intersect(a: np.ndarray, b: np.ndarray) -> bool:
    return bool(np.any(a & b))


def fingerprint_graph(part) -> str:
    """sha256 identity of a partitioned graph.

    Hashes what determines traversal results: the vertex count, the
    degree vector, the mesh shape, and the class thresholds' effect
    (the per-class counts).  Cheap relative to a partition build, and
    any graph reload that could change a parent tree changes it.
    """
    h = hashlib.sha256()
    h.update(
        np.array(
            [
                part.num_vertices,
                part.total_arcs,
                part.mesh.rows,
                part.mesh.cols,
                part.num_e,
                part.num_h,
            ],
            dtype=np.int64,
        ).tobytes()
    )
    h.update(np.ascontiguousarray(part.degrees, dtype=np.int64).tobytes())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Counters mirrored by :class:`ResultCache` for quick inspection."""

    hits: int = 0
    misses: int = 0
    evicted_lru: int = 0
    evicted_ttl: int = 0
    evicted_invalidation: int = 0
    #: Evictions by root-set or delta-digest invalidation (a subset of
    #: ``evicted_invalidation``).
    partial_invalidations: int = 0
    #: Entries carried across a graph delta by :meth:`ResultCache.apply_delta`.
    rekeyed: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    __slots__ = ("parent", "created_at", "digest")

    def __init__(
        self, parent: np.ndarray, created_at: float, digest: np.ndarray
    ) -> None:
        self.parent = parent
        self.created_at = created_at
        self.digest = digest


class ResultCache:
    """Bounded LRU + TTL cache of parent trees, keyed by
    ``(graph fingerprint, root)``."""

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: float = math.inf,
        *,
        clock=time.monotonic,
        metrics=NULL_METRICS,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.capacity = int(capacity)
        self.ttl_seconds = float(ttl_seconds)
        self._clock = clock
        self._metrics = metrics
        self._entries: OrderedDict[tuple[str, int], _Entry] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------

    def get(self, fingerprint: str, root: int) -> np.ndarray | None:
        """The cached parent tree, or ``None`` (miss or TTL-expired)."""
        key = (fingerprint, int(root))
        entry = self._entries.get(key)
        if entry is not None and (
            self._clock() - entry.created_at >= self.ttl_seconds
        ):
            del self._entries[key]
            self._count_eviction("ttl")
            entry = None
        if entry is None:
            self.stats.misses += 1
            self._metrics.counter("serve_cache_misses").inc()
            self._sync_size()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self._metrics.counter("serve_cache_hits").inc()
        return entry.parent

    def put(
        self,
        fingerprint: str,
        root: int,
        parent: np.ndarray,
        touched=None,
    ) -> None:
        """Insert (or refresh) one result; evicts LRU past capacity.

        ``touched`` is the vertex set feeding the entry's staleness
        digest; by default it is the parent tree itself (every vertex
        with a parent, i.e. everything reachable from ``root``), which
        is exactly the set an edge update must intersect to be able to
        change this result.
        """
        key = (fingerprint, int(root))
        stored = np.ascontiguousarray(parent)
        stored.setflags(write=False)
        if touched is None:
            touched = np.flatnonzero(stored >= 0)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = _Entry(
            stored, self._clock(), touched_digest(touched)
        )
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._count_eviction("lru")
        self._sync_size()

    def invalidate(
        self, fingerprint: str | None = None, roots=None
    ) -> int:
        """Drop entries of one graph generation (or all of them).

        With ``roots`` (an iterable of vertex ids), drops only the
        given generation's entries for those roots — partial
        invalidation, counted into
        ``serve_cache_partial_invalidations``.  Called on graph reload
        in its original one-argument form; returns the number of
        dropped entries.
        """
        partial = False
        if fingerprint is None:
            if roots is not None:
                raise ValueError("roots requires a fingerprint")
            dropped = len(self._entries)
            self._entries.clear()
        elif roots is None:
            stale = [k for k in self._entries if k[0] == fingerprint]
            dropped = len(stale)
            for k in stale:
                del self._entries[k]
        else:
            partial = True
            stale = [
                (fingerprint, int(r))
                for r in roots
                if (fingerprint, int(r)) in self._entries
            ]
            dropped = len(stale)
            for k in stale:
                del self._entries[k]
        for _ in range(dropped):
            self._count_eviction("invalidation")
        if partial and dropped:
            self._count_partial(dropped)
        self._sync_size()
        return dropped

    def apply_delta(
        self, old_fingerprint: str, new_fingerprint: str, touched
    ) -> tuple[int, int]:
        """Carry a graph generation across an edge-update delta.

        ``touched`` is the delta's touched-vertex set (endpoints of
        inserted, deleted and migrated arcs plus re-classified
        vertices).  Old-generation entries whose digest intersects the
        delta's are evicted — the update may reach their tree.  The
        rest provably cannot have changed (no touched vertex is
        reachable from their root) and are re-keyed to
        ``new_fingerprint``, preserving LRU order and ages.  Returns
        ``(evicted, rekeyed)``.
        """
        delta_digest = touched_digest(touched)
        entries: OrderedDict[tuple[str, int], _Entry] = OrderedDict()
        evicted = rekeyed = 0
        for (fp, root), entry in self._entries.items():
            if fp != old_fingerprint:
                entries[(fp, root)] = entry
            elif _digests_intersect(entry.digest, delta_digest):
                evicted += 1
            else:
                entries[(new_fingerprint, root)] = entry
                rekeyed += 1
        self._entries = entries
        for _ in range(evicted):
            self._count_eviction("invalidation")
        if evicted:
            self._count_partial(evicted)
        self.stats.rekeyed += rekeyed
        self._sync_size()
        return evicted, rekeyed

    # ------------------------------------------------------------------

    def _count_eviction(self, reason: str) -> None:
        setattr(
            self.stats,
            f"evicted_{reason}",
            getattr(self.stats, f"evicted_{reason}") + 1,
        )
        self._metrics.counter("serve_cache_evictions", reason=reason).inc()

    def _count_partial(self, count: int) -> None:
        self.stats.partial_invalidations += count
        self._metrics.counter("serve_cache_partial_invalidations").inc(count)

    def _sync_size(self) -> None:
        self.stats.size = len(self._entries)
        self._metrics.gauge("serve_cache_size").set(len(self._entries))
