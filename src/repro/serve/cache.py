"""Result cache for served traversals.

Keyed by ``(graph fingerprint, root)`` so entries can never outlive the
graph they were computed on: reloading a graph changes the fingerprint
and :meth:`ResultCache.invalidate` drops the stale generation.  Eviction
is LRU within a bounded capacity plus TTL expiry (checked lazily on
read), with every outcome counted in the shared metric families:

==========================  ============================================
family                      meaning
==========================  ============================================
``serve_cache_hits``        reads answered from cache
``serve_cache_misses``      reads that fell through to the engine
``serve_cache_evictions``   entries dropped, labeled ``reason=``
                            ``lru`` / ``ttl`` / ``invalidation``
``serve_cache_size``        current resident entries (gauge)
==========================  ============================================
"""

from __future__ import annotations

import hashlib
import math
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import NULL_METRICS

__all__ = ["ResultCache", "CacheStats", "fingerprint_graph"]


def fingerprint_graph(part) -> str:
    """sha256 identity of a partitioned graph.

    Hashes what determines traversal results: the vertex count, the
    degree vector, the mesh shape, and the class thresholds' effect
    (the per-class counts).  Cheap relative to a partition build, and
    any graph reload that could change a parent tree changes it.
    """
    h = hashlib.sha256()
    h.update(
        np.array(
            [
                part.num_vertices,
                part.total_arcs,
                part.mesh.rows,
                part.mesh.cols,
                part.num_e,
                part.num_h,
            ],
            dtype=np.int64,
        ).tobytes()
    )
    h.update(np.ascontiguousarray(part.degrees, dtype=np.int64).tobytes())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Counters mirrored by :class:`ResultCache` for quick inspection."""

    hits: int = 0
    misses: int = 0
    evicted_lru: int = 0
    evicted_ttl: int = 0
    evicted_invalidation: int = 0
    size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    __slots__ = ("parent", "created_at")

    def __init__(self, parent: np.ndarray, created_at: float) -> None:
        self.parent = parent
        self.created_at = created_at


class ResultCache:
    """Bounded LRU + TTL cache of parent trees, keyed by
    ``(graph fingerprint, root)``."""

    def __init__(
        self,
        capacity: int = 1024,
        ttl_seconds: float = math.inf,
        *,
        clock=time.monotonic,
        metrics=NULL_METRICS,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.capacity = int(capacity)
        self.ttl_seconds = float(ttl_seconds)
        self._clock = clock
        self._metrics = metrics
        self._entries: OrderedDict[tuple[str, int], _Entry] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------

    def get(self, fingerprint: str, root: int) -> np.ndarray | None:
        """The cached parent tree, or ``None`` (miss or TTL-expired)."""
        key = (fingerprint, int(root))
        entry = self._entries.get(key)
        if entry is not None and (
            self._clock() - entry.created_at >= self.ttl_seconds
        ):
            del self._entries[key]
            self._count_eviction("ttl")
            entry = None
        if entry is None:
            self.stats.misses += 1
            self._metrics.counter("serve_cache_misses").inc()
            self._sync_size()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        self._metrics.counter("serve_cache_hits").inc()
        return entry.parent

    def put(self, fingerprint: str, root: int, parent: np.ndarray) -> None:
        """Insert (or refresh) one result; evicts LRU past capacity."""
        key = (fingerprint, int(root))
        stored = np.ascontiguousarray(parent)
        stored.setflags(write=False)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = _Entry(stored, self._clock())
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._count_eviction("lru")
        self._sync_size()

    def invalidate(self, fingerprint: str | None = None) -> int:
        """Drop entries of one graph generation (or all of them).

        Called on graph reload; returns the number of dropped entries.
        """
        if fingerprint is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            stale = [k for k in self._entries if k[0] == fingerprint]
            dropped = len(stale)
            for k in stale:
                del self._entries[k]
        for _ in range(dropped):
            self._count_eviction("invalidation")
        self._sync_size()
        return dropped

    # ------------------------------------------------------------------

    def _count_eviction(self, reason: str) -> None:
        setattr(
            self.stats,
            f"evicted_{reason}",
            getattr(self.stats, f"evicted_{reason}") + 1,
        )
        self._metrics.counter("serve_cache_evictions", reason=reason).inc()

    def _sync_size(self) -> None:
        self.stats.size = len(self._entries)
        self._metrics.gauge("serve_cache_size").set(len(self._entries))
