"""The service's live telemetry endpoint: a minimal asyncio HTTP server.

Runs next to a :class:`~repro.serve.service.TraversalService` on its
event loop and exposes the observability surface to scrapers:

============  =========================================================
path          payload
============  =========================================================
``/metrics``  Prometheus text exposition — byte-identical to
              :func:`~repro.obs.metrics.to_prometheus_text` over the
              service's registry (pinned by test)
``/healthz``  liveness JSON: status, uptime, queue/request counters
``/slo``      :meth:`~repro.obs.slo.SLOMonitor.evaluate` document
              (``status: disabled`` when no monitor is attached)
``/timeline``  the sampler's snapshot ring
              (``status: disabled`` when no sampler is attached)
``/trace/<id>``  one request's staged
              :class:`~repro.serve.service.RequestTimeline` (404 once
              aged out)
============  =========================================================

When built with ``cluster=`` a :class:`~repro.cluster.service.ClusterService`
(which also satisfies the ``service`` surface), two multi-tenant views
appear and ``/slo`` changes shape:

================  =====================================================
``/tenants``      per-tenant queue depth/quota/weight/deficit, serving
                  counters, percentiles, and replica liveness
``/slo``          tenant id -> that tenant's
                  :meth:`~repro.obs.slo.SLOMonitor.evaluate` document
``/slo/<tenant>`` one tenant's SLO document (404 for unknown tenants)
================  =====================================================

HTTP support is deliberately tiny — GET only, one response per
connection (``Connection: close``) — which is all ``curl``, Prometheus,
and the CI smoke scraper need.  Bind to port 0 for an ephemeral port
(tests); :attr:`TelemetryServer.port` reports the bound one.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, to_prometheus_text

__all__ = ["TelemetryServer"]

_MAX_REQUEST_BYTES = 16384


class TelemetryServer:
    """Serves a :class:`TraversalService`'s telemetry over HTTP."""

    def __init__(
        self,
        service,
        registry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        sampler=None,
        slo_monitor=None,
        cluster=None,
    ) -> None:
        self.service = service
        self.registry = registry
        self.sampler = sampler
        self.slo_monitor = slo_monitor
        #: Multi-tenant mode: the owning ClusterService (enables the
        #: /tenants and per-tenant /slo views).
        self.cluster = cluster
        self._host = host
        self._port = int(port)
        self._server: asyncio.AbstractServer | None = None
        self._started_at = time.monotonic()
        self.scrapes = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves 0 → ephemeral after :meth:`start`)."""
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self._port}"

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("telemetry server already started")
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    async def __aenter__(self) -> "TelemetryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            TimeoutError,
            ConnectionError,
        ):
            writer.close()
            return
        try:
            status, ctype, body = self._route(request[:_MAX_REQUEST_BYTES])
            self.scrapes += 1
            writer.write(_response(status, ctype, body))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _route(self, raw: bytes) -> tuple[int, str, bytes]:
        try:
            request_line = raw.split(b"\r\n", 1)[0].decode("latin-1")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            return 400, "text/plain", b"bad request\n"
        if method != "GET":
            return 405, "text/plain", b"method not allowed\n"
        path = target.split("?", 1)[0]
        if path == "/metrics":
            text = to_prometheus_text(self.registry)
            return 200, PROMETHEUS_CONTENT_TYPE, text.encode("utf-8")
        if path == "/healthz":
            return 200, "application/json", _json(self._health())
        if path == "/slo":
            if self.cluster is not None:
                return 200, "application/json", _json(
                    self.cluster.slo_status()
                )
            if self.slo_monitor is None:
                return 200, "application/json", _json({"status": "disabled"})
            return 200, "application/json", _json(self.slo_monitor.evaluate())
        if path.startswith("/slo/"):
            if self.cluster is None:
                return 404, "application/json", _json(
                    {"error": "not a multi-tenant service"}
                )
            tenant_id = path[len("/slo/"):]
            monitor = self.cluster.slo_monitors.get(tenant_id)
            if monitor is None:
                return 404, "application/json", _json(
                    {"error": f"unknown tenant {tenant_id!r}"}
                )
            return 200, "application/json", _json(monitor.evaluate())
        if path == "/tenants":
            if self.cluster is None:
                return 404, "application/json", _json(
                    {"error": "not a multi-tenant service"}
                )
            return 200, "application/json", _json(
                self.cluster.tenants_snapshot()
            )
        if path == "/timeline":
            if self.sampler is None:
                return 200, "application/json", _json({"status": "disabled"})
            return 200, "application/json", _json(self.sampler.to_dict())
        if path.startswith("/trace/"):
            trace_id = path[len("/trace/"):]
            timeline = self.service.request_timeline(trace_id)
            if timeline is None:
                return 404, "application/json", _json(
                    {"error": f"unknown trace id {trace_id!r}"}
                )
            return 200, "application/json", _json(timeline.to_dict())
        return 404, "text/plain", b"not found\n"

    def _health(self) -> dict:
        stats = self.service.stats
        return {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self._started_at,
            "pending": self.service.pending,
            "requests": stats.requests,
            "completed": stats.completed,
            "cache_hits": stats.cache_hits,
            "shed": stats.shed,
            "failed": stats.failed,
            "scrapes": self.scrapes,
        }


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
}


def _json(doc: dict) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


def _response(status: int, content_type: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
