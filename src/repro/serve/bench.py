"""Serving benchmark core: amortization and throughput sweeps.

Shared by ``python -m repro bench-serve`` and
``benchmarks/bench_serve_throughput.py`` (which commits the
``BENCH_serve.json`` artifact) so both measure the same way.

Two layers, deliberately separate:

- :func:`amortization_sweep` — *deterministic, simulated*: for each
  batch size, runs the same root set through one
  :meth:`~repro.serve.msbfs.MultiSourceBFS.run_batch` and compares the
  amortized simulated cost per query against the single-root sequential
  baseline.  No asyncio, no wall clocks — bit-stable run to run, so it
  can be gated in CI (the batch=64 factor must stay >= 4x).
- :func:`service_sweep` — *end-to-end, wall-clock*: drives the full
  :class:`~repro.serve.service.TraversalService` with the seeded
  closed-loop workload across (batch window x queue depth) points,
  reporting wall QPS, p50/p99 latency, realized batch sizes, shedding,
  and cache hit rates.  Wall numbers vary with the host; correctness
  numbers (wrong parents, drops) do not.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.serve.workload import make_workload_roots, run_serving_session

__all__ = [
    "AmortizationPoint",
    "ServicePoint",
    "amortization_sweep",
    "service_sweep",
    "build_serving_pair",
]


def build_serving_pair(
    scale: int,
    rows: int,
    cols: int,
    *,
    seed: int,
    e_threshold: int | None = None,
    h_threshold: int | None = None,
    backend=None,
    tracer=None,
    metrics=None,
):
    """Build the (sequential engine, batch engine) pair over one graph.

    Both share the partition, machine model, and config, so any cost
    difference between them is the batching itself.  A ``backend`` is
    shared by both engines (mounting is additive and deduplicated by
    component, so the pair costs one set of shared segments).
    ``tracer``/``metrics`` (optional) attach to the batched engine —
    the serving side — so worker telemetry and scheduler spans land in
    the caller's sinks.
    """
    from repro.analysis.experiments import tuned_thresholds
    from repro.core.config import BFSConfig
    from repro.core.engine import DistributedBFS
    from repro.core.partition import partition_graph
    from repro.graph500.rmat import generate_edges
    from repro.machine.network import MachineSpec
    from repro.runtime.mesh import ProcessMesh
    from repro.serve.msbfs import MultiSourceBFS

    if e_threshold is None or h_threshold is None:
        e_threshold, h_threshold = tuned_thresholds(scale)
    src, dst = generate_edges(scale, seed=seed)
    p = rows * cols
    # The plain per-node machine model (no weak-scaling bandwidth
    # normalization): serving amortization is about communication shared
    # across lanes, so the machine's real comm/compute balance is the
    # honest denominator.
    machine = MachineSpec(num_nodes=p, nodes_per_supernode=cols)
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(
        src, dst, 1 << scale, mesh,
        e_threshold=e_threshold, h_threshold=h_threshold,
    )
    config = BFSConfig(e_threshold=e_threshold, h_threshold=h_threshold)
    sequential = DistributedBFS(
        part, machine=machine, config=config, backend=backend
    )
    extra = {}
    if tracer is not None:
        extra["tracer"] = tracer
    if metrics is not None:
        extra["metrics"] = metrics
    batched = MultiSourceBFS(
        part, machine=machine, config=config, backend=backend, **extra
    )
    return sequential, batched


@dataclass
class AmortizationPoint:
    """Deterministic simulated cost of one batch size."""

    batch_size: int
    #: Simulated seconds for the whole batch (one traversal).
    batch_seconds: float
    #: ``batch_seconds / batch_size`` — the per-query share.
    amortized_seconds: float
    #: Sum of the same roots run sequentially.
    sequential_seconds: float
    #: ``sequential / batch`` — how much cheaper a batched query is.
    amortization_factor: float
    #: Ledger bytes: batch vs the sequential sum.
    batch_bytes: float
    sequential_bytes: float
    waves: int

    def to_dict(self) -> dict:
        return asdict(self)


def amortization_sweep(
    sequential,
    batched,
    roots: np.ndarray,
    *,
    batch_sizes=(1, 4, 16, 64),
) -> list[AmortizationPoint]:
    """Amortized simulated cost per query, batch size by batch size.

    Each point batches the first ``b`` roots and compares against the
    same roots run sequentially.  Everything is simulated time from the
    shared :class:`~repro.runtime.ledger.TrafficLedger`, so the sweep is
    bit-stable and CI-gateable.
    """
    roots = np.asarray(roots, dtype=np.int64)
    seq = {int(r): sequential.run(int(r)) for r in np.unique(roots)}
    points = []
    for b in batch_sizes:
        if b > roots.size:
            continue
        chunk = roots[:b]
        batch = batched.run_batch(chunk)
        seq_seconds = sum(seq[int(r)].total_seconds for r in chunk)
        seq_bytes = sum(seq[int(r)].ledger.total_bytes for r in chunk)
        points.append(
            AmortizationPoint(
                batch_size=int(b),
                batch_seconds=float(batch.total_seconds),
                amortized_seconds=float(batch.amortized_seconds),
                sequential_seconds=float(seq_seconds),
                amortization_factor=float(
                    seq_seconds / batch.total_seconds
                ),
                batch_bytes=float(batch.ledger.total_bytes),
                sequential_bytes=float(seq_bytes),
                waves=int(batch.num_waves),
            )
        )
    return points


@dataclass
class ServicePoint:
    """One end-to-end service configuration's measured behavior."""

    batch_size: int
    queue_depth: int
    batch_window: float
    num_queries: int
    clients: int
    served: int
    failed: int
    wrong_parents: int
    shed_retries: int
    cache_hit_rate: float
    mean_batch_size: float
    #: Amortized *simulated* seconds per engine-served query.
    sim_seconds_per_query: float
    #: Wall-clock throughput and latency of the closed loop.
    wall_seconds: float
    qps: float
    p50_seconds: float
    p99_seconds: float

    def to_dict(self) -> dict:
        return asdict(self)


def service_sweep(
    batched,
    degrees,
    *,
    num_queries: int = 256,
    seed: int = 1,
    hot_fraction: float = 0.5,
    hot_set_size: int = 16,
    batch_sizes=(64,),
    queue_depths=(64, 256),
    batch_windows=(0.005,),
    clients: int | None = None,
    expected: dict | None = None,
) -> list[ServicePoint]:
    """Run the closed-loop workload across service configurations.

    ``expected`` (root -> parent array) turns on bit-exact response
    validation; ``clients`` defaults to twice the batch size so batches
    can actually fill.
    """
    points = []
    for b in batch_sizes:
        for depth in queue_depths:
            for window in batch_windows:
                roots = make_workload_roots(
                    degrees, num_queries, seed=seed,
                    hot_fraction=hot_fraction, hot_set_size=hot_set_size,
                )
                n_clients = clients if clients is not None else 2 * b
                n_clients = max(1, min(n_clients, num_queries))
                t0 = time.monotonic()
                report, service = run_serving_session(
                    batched, roots,
                    clients=n_clients, expected=expected,
                    batch_size=b, queue_depth=depth, batch_window=window,
                )
                wall = time.monotonic() - t0
                stats = service.stats
                points.append(
                    ServicePoint(
                        batch_size=int(b),
                        queue_depth=int(depth),
                        batch_window=float(window),
                        num_queries=int(num_queries),
                        clients=int(n_clients),
                        served=int(report.served),
                        failed=int(report.failed),
                        wrong_parents=int(report.wrong_parents),
                        shed_retries=int(report.shed_retries),
                        cache_hit_rate=float(report.cache_hit_rate),
                        mean_batch_size=float(stats.mean_batch_size),
                        sim_seconds_per_query=float(
                            stats.sim_seconds_per_query
                        ),
                        wall_seconds=float(wall),
                        qps=float(report.served / wall) if wall else 0.0,
                        p50_seconds=float(stats.p50_seconds),
                        p99_seconds=float(stats.p99_seconds),
                    )
                )
    return points
