"""Bit-parallel multi-source BFS (the serving layer's batch engine).

Packs up to 64 concurrent roots into a uint64 lane word per vertex and
runs them as *one* level-synchronous traversal through the shared
:class:`~repro.core.kernels.scheduler.LevelSyncScheduler` and the 1.5D
:class:`~repro.core.kernels.fifteend` kernel set.  The design contract:

**Bit-identity.**  Lane ``l``'s parent tree is bit-identical to a
sequential :class:`~repro.core.engine.DistributedBFS` run from
``roots[l]`` under the same config.  Two properties make that hold:

1. every component picks its direction *per lane* with exactly the
   sequential §4.2 heuristics (same integer population counts, same
   float comparisons), and lanes are grouped by chosen direction — a
   component executes at most one shared push pass and one shared pull
   pass per wave, so no lane is ever traversed in a direction its
   sequential run would not have used (push and pull pick different
   parents when a destination's arcs span ranks);
2. within a pass, lane ``l``'s arc subset is the sequential selection in
   the same deterministic order, so first-writer-per-destination (push)
   and lowest-(rank, position) winners (pull) coincide per lane.

**Amortization.**  Traffic is charged through the same
:class:`~repro.runtime.ledger.TrafficLedger` choke point with lane-word
message sizes (16 bytes: vertex ID + lane word, vs 8 sequential):
overlapping frontiers collapse per-arc messages, frontier syncs and
parent reductions are priced per batch instead of per root, and the
wave count is the *max* of the lanes' depths rather than their sum —
which is why a 64-root batch charges strictly less than 64 sequential
runs combined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BFSConfig
from repro.core.direction import choose_whole_iteration_direction
from repro.core.kernels.fifteend import FifteenDContext, build_fifteend_kernels
from repro.core.kernels.scheduler import (
    BatchRunState,
    LevelSyncScheduler,
    SchedulerHost,
)
from repro.core.lanes import (
    MAX_LANES,
    LaneClassState,
    iter_lanes,
    lane_bit,
)
from repro.core.metrics import BFSRunResult, IterationRecord
from repro.core.partition import (
    COMPONENT_CLASSES,
    NODE_LOCAL_COMPONENTS,
    PartitionedGraph,
)
from repro.core.subgraphs import COMPONENT_ORDER
from repro.machine.network import MachineSpec
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import Tracer
from repro.resilience.faults import NULL_FAULTS, RankCrashError
from repro.resilience.recovery import RecoveryError, RecoveryPolicy

__all__ = [
    "MAX_BATCH_ROOTS",
    "MSBFSResult",
    "MultiSourceBFS",
    "BatchRecovery",
    "run_batch_with_recovery",
]

#: Lane-word width: roots per batch.
MAX_BATCH_ROOTS = MAX_LANES


@dataclass
class MSBFSResult:
    """Outcome of one multi-source batch.

    Per-root views (:meth:`lane_parent`, :meth:`lane_records`,
    :meth:`per_root_result`) expose each lane as if it had been a
    sequential run; batch-level aggregates (``ledger``,
    ``total_seconds``, ``records``) price the shared traversal once.
    """

    roots: np.ndarray
    #: ``parent[lane, vertex]`` — lane ``l``'s full parent tree.
    parent: np.ndarray = field(repr=False)
    #: One aggregate record per wave.
    records: list[IterationRecord] = field(repr=False)
    #: Per wave: per-lane frontier sizes.
    lane_frontiers: list[np.ndarray] = field(repr=False)
    #: Per wave: ``{component: (push_mask, pull_mask)}`` lane groups.
    lane_directions: list[dict] = field(repr=False)
    ledger: object = field(repr=False)
    total_seconds: float = 0.0
    num_input_edges: int = 0
    metrics: object = field(default=NULL_METRICS, repr=False)

    @property
    def num_lanes(self) -> int:
        return int(self.roots.size)

    @property
    def num_waves(self) -> int:
        return len(self.records)

    @property
    def amortized_seconds(self) -> float:
        """Simulated cost per query when the batch is shared fairly."""
        return self.total_seconds / self.num_lanes

    def lane_parent(self, lane: int) -> np.ndarray:
        return self.parent[lane]

    def lane_depth(self, lane: int) -> int:
        """Levels lane ``lane`` actually ran (its sequential iteration
        count)."""
        depth = 0
        for sizes in self.lane_frontiers:
            if sizes[lane] == 0:
                break
            depth += 1
        return depth

    def lane_records(self, lane: int) -> list[IterationRecord]:
        """Lane-eye view of the wave records: one record per level the
        lane was live, with the direction *that lane* ran per component
        (matching its sequential run's records)."""
        bit = lane_bit(lane)
        out = []
        for it, sizes in enumerate(self.lane_frontiers):
            if sizes[lane] == 0:
                break
            rec = IterationRecord(index=it, frontier_size=int(sizes[lane]))
            dirs = self.lane_directions[it]
            for name, agg_dir in self.records[it].directions.items():
                if name not in dirs:
                    rec.directions[name] = agg_dir  # "-": component empty
                    continue
                push_mask, pull_mask = dirs[name]
                if int(push_mask) & int(bit):
                    rec.directions[name] = "push"
                elif int(pull_mask) & int(bit):
                    rec.directions[name] = "pull"
                else:
                    rec.directions[name] = "-"
            out.append(rec)
        return out

    def per_root_result(self, lane: int, *, share_ledger: bool = False) -> BFSRunResult:
        """A :class:`BFSRunResult`-shaped view of one lane.

        ``total_seconds`` is the amortized share of the batch.  The
        batch ledger is attached only when ``share_ledger`` — exactly
        one lane of a batch should carry it, so that summing ledgers
        across per-root results counts the shared traversal once.
        """
        from repro.runtime.ledger import TrafficLedger

        ledger = (
            self.ledger
            if share_ledger
            else TrafficLedger(self.ledger.cost_model)
        )
        return BFSRunResult(
            root=int(self.roots[lane]),
            parent=self.parent[lane],
            iterations=self.lane_records(lane),
            ledger=ledger,
            total_seconds=self.amortized_seconds,
            num_input_edges=self.num_input_edges,
            metrics=self.metrics,
        )


class MultiSourceBFS(SchedulerHost):
    """Multi-source 1.5D BFS host: the batched sibling of
    :class:`~repro.core.engine.DistributedBFS`, sharing its kernels,
    context, and config — differing only in the batched scheduler hooks."""

    def __init__(
        self,
        part: PartitionedGraph,
        machine: MachineSpec | None = None,
        config: BFSConfig = BFSConfig(),
        tracer: Tracer | None = None,
        metrics=None,
        backend=None,
    ) -> None:
        self.part = part
        self.mesh = part.mesh
        self.config = config
        self.tracer = tracer
        self.metrics = metrics
        if machine is None:
            machine = self.mesh.machine or MachineSpec(
                num_nodes=self.mesh.num_ranks
            )
        if machine.num_nodes < self.mesh.num_ranks:
            raise ValueError("machine smaller than the mesh")
        self.machine = machine

        self.ctx = FifteenDContext(part, machine, config)
        self.kernels = build_fifteend_kernels(self.ctx, COMPONENT_ORDER)
        self.scheduler = LevelSyncScheduler(
            self, self.kernels, tracer=tracer, metrics=metrics, backend=backend
        )
        self.lane_class_state = LaneClassState(self.ctx.masks)

        self.num_vertices = part.num_vertices
        self.num_input_edges = part.total_arcs // 2

    @property
    def cost(self):
        return self.ctx.cost

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run_batch(self, roots, *, faults=None, span_attrs=None) -> MSBFSResult:
        """Traverse up to 64 distinct roots as one batched wave sequence.

        ``faults`` forwards the scheduler's injector hook; a crash fault
        aborts the whole batch with a
        :class:`~repro.resilience.faults.RankCrashError` (recover with
        :func:`run_batch_with_recovery`, or let the service replay the
        batch from its queue).  ``span_attrs`` merges extra attributes
        (the service's request trace ids) into the ``msbfs`` span.
        """
        state: BatchRunState = self.scheduler.run_batch(
            roots, faults=faults, span_attrs=span_attrs
        )
        return MSBFSResult(
            roots=state.lanes.roots,
            parent=state.lanes.parent,
            records=state.records,
            lane_frontiers=state.lane_frontiers,
            lane_directions=state.lane_directions,
            ledger=state.ledger,
            total_seconds=state.ledger.total_seconds,
            num_input_edges=self.num_input_edges,
            metrics=self.metrics if self.metrics is not None else NULL_METRICS,
        )

    # ------------------------------------------------------------------
    # batched scheduler hooks (the 1.5D policy, per lane)
    # ------------------------------------------------------------------

    def begin_batch_iteration(self, ledger, lanes) -> None:
        self.ctx.charge_delegate_sync_lanes(ledger, lanes)

    def batch_iteration_directions(self, lanes):
        if self.config.sub_iteration_direction:
            return None
        # Whole-iteration (Beamer) mode, per lane: each lane evaluates
        # the sequential heuristic on its own boolean view.
        degrees = self.part.degrees
        push_mask = np.uint64(0)
        pull_mask = np.uint64(0)
        for lane in iter_lanes(lanes.active_lane_mask):
            bit = lane_bit(lane)
            active = (lanes.active & bit) != 0
            visited = (lanes.visited & bit) != 0
            direction = choose_whole_iteration_direction(
                active, visited, degrees, self.config
            )
            if direction == "pull":
                pull_mask |= bit
            else:
                push_mask |= bit
        return push_mask, pull_mask

    def batch_component_directions(self, name, lanes):
        # Fresh per-lane ratios (§4.2): the integer population counts and
        # float comparisons match each lane's sequential decision exactly.
        ratios = self.lane_class_state.measure(lanes)
        src_cls, dst_cls = COMPONENT_CLASSES[name]
        active_src = ratios[src_cls][0]
        unvisited_dst = ratios[dst_cls][1]
        if name in NODE_LOCAL_COMPONENTS:
            pull = active_src > self.config.local_pull_threshold
        else:
            pull = unvisited_dst < active_src * self.config.cross_pull_bias
        push_mask = np.uint64(0)
        pull_mask = np.uint64(0)
        for lane in iter_lanes(lanes.active_lane_mask):
            if pull[lane]:
                pull_mask |= lane_bit(lane)
            else:
                push_mask |= lane_bit(lane)
        return push_mask, pull_mask

    def record_batch_activation(self, record: IterationRecord, newly) -> None:
        # (vertex, lane) activation pairs per class — the batch analogue
        # of the sequential per-class counts.
        for cls in ("E", "H", "L"):
            record.newly_activated[cls] = int(
                np.bitwise_count(newly[self.ctx.masks[cls]]).sum()
            )

    def end_batch_iteration(self, ledger, record, lanes, newly) -> None:
        if not self.config.delayed_reduction:
            self.ctx.charge_parent_reduction(ledger, lanes.num_lanes)

    def end_batch_run(self, ledger, tracer, lanes) -> None:
        if self.config.delayed_reduction:
            with tracer.span("parent_reduction", category="phase"):
                self.ctx.charge_parent_reduction(ledger, lanes.num_lanes)


@dataclass
class BatchRecovery:
    """A recovered batch plus its crash accounting."""

    result: MSBFSResult
    crashes: int = 0
    wasted_seconds: float = 0.0


def run_batch_with_recovery(
    engine: MultiSourceBFS,
    roots,
    *,
    faults=NULL_FAULTS,
    policy: RecoveryPolicy = RecoveryPolicy(),
    metrics=NULL_METRICS,
) -> BatchRecovery:
    """Run one batch, replaying it from scratch on injected rank crashes.

    A mid-batch crash fails only this batch: the whole batch is re-run
    (there is no per-root checkpoint inside a shared wave), the aborted
    attempts' ledgers are merged into the final result so
    ``total_seconds`` reflects the true end-to-end cost, and the restart
    budget is the policy's ``max_restarts``.  Only ``restart`` mode is
    meaningful for a batch — ``degrade`` excision is per-root machinery.
    """
    if policy.mode != "restart":
        raise RecoveryError(
            "batched runs support restart recovery only "
            f"(policy mode {policy.mode!r})"
        )
    crashes = 0
    wasted: list = []
    wasted_seconds = 0.0
    while True:
        try:
            result = engine.run_batch(
                roots, faults=faults if faults is not NULL_FAULTS else None
            )
            break
        except RankCrashError as crash:
            crashes += 1
            metrics.counter("rank_crashes").inc()
            if crash.ledger is not None:
                wasted.append(crash.ledger)
                wasted_seconds += crash.ledger.total_seconds
            if crashes > policy.max_restarts:
                raise RecoveryError(
                    f"rank {crash.rank} crashed mid-batch; restart budget "
                    f"({policy.max_restarts}) exhausted"
                ) from crash
            metrics.counter("recoveries", mode="restart").inc()
    recovery_seconds = 0.0
    for ledger in wasted:
        recovery_seconds += ledger.total_seconds
        result.ledger.merge(ledger)
    if wasted:
        result.total_seconds = result.ledger.total_seconds
        metrics.counter("recovery_time").inc(recovery_seconds)
    return BatchRecovery(
        result=result, crashes=crashes, wasted_seconds=wasted_seconds
    )
