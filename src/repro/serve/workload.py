"""Seeded closed-loop workload generation for the traversal service.

Two pieces:

- :func:`make_workload_roots` — a seeded query stream over the graph's
  non-isolated vertices with a configurable *hot set*, so repeated roots
  exercise the result cache deterministically.
- :func:`run_workload` — a closed-loop driver: ``clients`` concurrent
  clients each keep exactly one query in flight, retrying queries the
  service sheds (``Overloaded`` is backpressure, not failure).  Every
  query's outcome — served, cached, failed, and whether the returned
  parent tree matched the expected one — is recorded.

The CI smoke and ``bench-serve`` both drive the service through this
module, so "zero wrong parents / zero dropped non-shed requests" is
asserted against the exact client behavior a user would write.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.serve.service import (
    Overloaded,
    TraversalError,
    TraversalService,
)

__all__ = [
    "make_workload_roots",
    "run_workload",
    "run_serving_session",
    "QueryOutcome",
    "WorkloadReport",
]


def make_workload_roots(
    degrees,
    num_queries: int,
    *,
    seed: int,
    hot_fraction: float = 0.5,
    hot_set_size: int = 16,
) -> np.ndarray:
    """A seeded stream of query roots.

    Each query draws from a small *hot set* with probability
    ``hot_fraction`` (producing cache-friendly repeats) and uniformly
    from all non-isolated vertices otherwise.  Identical ``seed`` and
    parameters give a bit-identical stream.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    candidates = np.flatnonzero(np.asarray(degrees) > 0)
    if candidates.size == 0:
        raise ValueError("graph has no non-isolated vertices to query")
    hot_set_size = max(1, min(int(hot_set_size), int(candidates.size)))
    hot = rng.choice(candidates, size=hot_set_size, replace=False)
    is_hot = rng.random(num_queries) < hot_fraction
    hot_picks = rng.integers(0, hot_set_size, size=num_queries)
    cold_picks = rng.integers(0, candidates.size, size=num_queries)
    roots = np.where(is_hot, hot[hot_picks], candidates[cold_picks])
    return roots.astype(np.int64)


@dataclass
class QueryOutcome:
    """One query's journey through the service."""

    root: int
    cached: bool = False
    #: ``True``/``False`` when validated against an expected parent
    #: tree, ``None`` when no expectation was supplied.
    correct: bool | None = None
    total_seconds: float = 0.0
    batch_lanes: int = 0
    shed_retries: int = 0
    error: str | None = None

    @property
    def served(self) -> bool:
        return self.error is None


@dataclass
class WorkloadReport:
    """Aggregate outcomes of one closed-loop run."""

    outcomes: list = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        return len(self.outcomes)

    @property
    def served(self) -> int:
        return sum(1 for o in self.outcomes if o.served)

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.error is not None)

    @property
    def shed_retries(self) -> int:
        return sum(o.shed_retries for o in self.outcomes)

    @property
    def wrong_parents(self) -> int:
        return sum(1 for o in self.outcomes if o.correct is False)

    @property
    def validated(self) -> int:
        return sum(1 for o in self.outcomes if o.correct is not None)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.served if self.served else 0.0

    def latency_percentile(self, q: float) -> float:
        samples = [o.total_seconds for o in self.outcomes if o.served]
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples), q))


async def run_workload(
    service: TraversalService,
    roots,
    *,
    clients: int = 4,
    expected: dict | None = None,
    shed_backoff: float = 0.0005,
    max_shed_retries: int = 10_000,
) -> WorkloadReport:
    """Drive ``service`` with a closed loop of ``clients`` clients.

    Each client keeps one query in flight; an :class:`Overloaded`
    rejection backs off ``shed_backoff`` seconds and retries the same
    root.  ``expected`` maps root → parent array; served responses for
    those roots are checked bit-for-bit.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    pending = deque(int(r) for r in roots)
    outcomes: list[QueryOutcome] = []

    async def client() -> None:
        while pending:
            root = pending.popleft()
            retries = 0
            while True:
                try:
                    response = await service.submit(root)
                except Overloaded:
                    retries += 1
                    if retries > max_shed_retries:
                        outcomes.append(
                            QueryOutcome(
                                root=root,
                                shed_retries=retries,
                                error="shed retry budget exhausted",
                            )
                        )
                        break
                    await asyncio.sleep(shed_backoff)
                    continue
                except TraversalError as exc:
                    outcomes.append(
                        QueryOutcome(
                            root=root, shed_retries=retries, error=str(exc)
                        )
                    )
                    break
                correct = None
                if expected is not None and root in expected:
                    correct = bool(
                        np.array_equal(response.parent, expected[root])
                    )
                outcomes.append(
                    QueryOutcome(
                        root=root,
                        cached=response.cached,
                        correct=correct,
                        total_seconds=response.total_seconds,
                        batch_lanes=response.batch_lanes,
                        shed_retries=retries,
                    )
                )
                break

    await asyncio.gather(*(client() for _ in range(clients)))
    return WorkloadReport(outcomes=outcomes)


def run_serving_session(
    engine,
    roots,
    *,
    clients: int = 4,
    expected: dict | None = None,
    **service_kwargs,
) -> tuple[WorkloadReport, TraversalService]:
    """Synchronous convenience: build a service around ``engine``, run
    the workload to completion, stop the service, and return both the
    workload report and the (stopped) service for stats inspection."""

    async def main() -> tuple[WorkloadReport, TraversalService]:
        service = TraversalService(engine, **service_kwargs)
        async with service:
            report = await run_workload(
                service, roots, clients=clients, expected=expected
            )
        return report, service

    return asyncio.run(main())
