"""Seeded workload generation for the traversal serving planes.

Single-graph pieces:

- :func:`make_workload_roots` — a seeded query stream over the graph's
  non-isolated vertices with a configurable *hot set*, so repeated roots
  exercise the result cache deterministically.
- :func:`run_workload` — a closed-loop driver: ``clients`` concurrent
  clients each keep exactly one query in flight, retrying queries the
  service sheds (``Overloaded`` is backpressure, not failure).  Every
  query's outcome — served, cached, failed, and whether the returned
  parent tree matched the expected one — is recorded.

Multi-tenant pieces (consumed by :mod:`repro.cluster`):

- :func:`pareto_popularity` — seeded heavy-tail tenant popularity: each
  tenant's traffic share is a normalized Pareto draw, so a few tenants
  dominate the stream the way production traffic does.
- :func:`make_diurnal_workload` — a seeded *timed* query stream over
  many tenants: arrival times follow a sinusoidal (diurnal) rate curve
  via inverse-CDF sampling, tenants are drawn by Pareto popularity, and
  each tenant's roots come from its own :func:`make_workload_roots`
  stream.  Identical ``seed`` and parameters give a bit-identical
  workload (arrival floats included).

Every query's journey is a :class:`QueryOutcome` (now tenant-tagged);
:meth:`WorkloadReport.per_tenant` splits a report into per-tenant
sub-reports so fairness and SLO gates can compare tenants directly.

The CI smokes and the serving benchmarks all drive services through
this module, so "zero wrong parents / zero dropped-without-typed-shed
responses" is asserted against the exact client behavior a user would
write.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.serve.service import (
    Overloaded,
    TraversalError,
    TraversalService,
)

__all__ = [
    "make_workload_roots",
    "pareto_popularity",
    "make_diurnal_workload",
    "run_workload",
    "run_serving_session",
    "QueryOutcome",
    "WorkloadReport",
    "ClusterQuery",
    "ClusterWorkload",
    "TelemetrySummary",
    "http_get",
]


def make_workload_roots(
    degrees,
    num_queries: int,
    *,
    seed: int,
    hot_fraction: float = 0.5,
    hot_set_size: int = 16,
) -> np.ndarray:
    """A seeded stream of query roots.

    Each query draws from a small *hot set* with probability
    ``hot_fraction`` (producing cache-friendly repeats) and uniformly
    from all non-isolated vertices otherwise.  Identical ``seed`` and
    parameters give a bit-identical stream.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    candidates = np.flatnonzero(np.asarray(degrees) > 0)
    if candidates.size == 0:
        raise ValueError("graph has no non-isolated vertices to query")
    hot_set_size = max(1, min(int(hot_set_size), int(candidates.size)))
    hot = rng.choice(candidates, size=hot_set_size, replace=False)
    is_hot = rng.random(num_queries) < hot_fraction
    hot_picks = rng.integers(0, hot_set_size, size=num_queries)
    cold_picks = rng.integers(0, candidates.size, size=num_queries)
    roots = np.where(is_hot, hot[hot_picks], candidates[cold_picks])
    return roots.astype(np.int64)


def pareto_popularity(tenants, *, alpha: float = 1.1, seed: int) -> dict:
    """Seeded heavy-tail traffic shares: tenant -> fraction of queries.

    One normalized ``Pareto(alpha) + 1`` draw per tenant, sorted
    descending before assignment so the *first* tenant in the given
    order is always the heaviest — callers can rely on ``tenants[0]``
    being the hot tenant.  Smaller ``alpha`` means a heavier tail.
    """
    tenants = list(tenants)
    if not tenants:
        raise ValueError("at least one tenant is required")
    if alpha <= 0:
        raise ValueError("alpha must be > 0")
    rng = np.random.default_rng(seed)
    draws = np.sort(rng.pareto(alpha, size=len(tenants)) + 1.0)[::-1]
    shares = draws / draws.sum()
    return {t: float(s) for t, s in zip(tenants, shares)}


@dataclass(frozen=True)
class ClusterQuery:
    """One timed query of a multi-tenant workload."""

    arrival_seconds: float
    tenant: str
    root: int


@dataclass
class ClusterWorkload:
    """A seeded multi-tenant query stream, sorted by arrival time."""

    queries: list = field(default_factory=list)
    #: Tenant -> sampled traffic share (sums to 1).
    popularity: dict = field(default_factory=dict)
    duration_seconds: float = 0.0

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def per_tenant_counts(self) -> dict:
        counts: dict[str, int] = {t: 0 for t in self.popularity}
        for q in self.queries:
            counts[q.tenant] = counts.get(q.tenant, 0) + 1
        return counts

    def for_tenant(self, tenant: str) -> "ClusterWorkload":
        """The sub-stream of one tenant (arrival times preserved)."""
        return ClusterWorkload(
            queries=[q for q in self.queries if q.tenant == tenant],
            popularity={tenant: self.popularity.get(tenant, 1.0)},
            duration_seconds=self.duration_seconds,
        )


def _tenant_seed(seed: int, index: int) -> int:
    """A derived per-tenant sub-seed (stable, collision-resistant)."""
    return (seed * 0x9E3779B1 + (index + 1) * 0x85EBCA77) & 0x7FFFFFFF


def make_diurnal_workload(
    tenant_degrees,
    num_queries: int,
    *,
    seed: int,
    duration_seconds: float = 1.0,
    period_seconds: float | None = None,
    peak_to_trough: float = 4.0,
    alpha: float = 1.1,
    popularity: dict | None = None,
    hot_fraction: float = 0.5,
    hot_set_size: int = 16,
) -> ClusterWorkload:
    """A seeded diurnal + heavy-tail multi-tenant query stream.

    ``tenant_degrees`` maps tenant id -> that tenant's graph degree
    vector (iteration order fixes the tenant order).  Three seeded
    draws compose the stream:

    - **arrivals**: exactly ``num_queries`` arrival times on
      ``[0, duration_seconds)`` sampled by inverse CDF from the
      sinusoidal rate ``r(t) = 1 + a*sin(2*pi*t/period)`` with ``a``
      chosen so peak rate / trough rate = ``peak_to_trough`` (the
      diurnal curve, one full cycle per ``period_seconds``, default one
      cycle over the whole duration);
    - **tenant of each query**: drawn from :func:`pareto_popularity`
      shares (or an explicit ``popularity`` map, normalized here);
    - **roots**: each tenant's roots come from its own seeded
      :func:`make_workload_roots` hot/cold stream, so repeats exercise
      that tenant's cache.

    The result is bit-reproducible from ``seed`` — same floats, same
    order — which is what lets benchmarks drift-gate per-tenant query
    counts.
    """
    tenant_degrees = dict(tenant_degrees)
    if not tenant_degrees:
        raise ValueError("at least one tenant is required")
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be > 0")
    if peak_to_trough < 1.0:
        raise ValueError("peak_to_trough must be >= 1")
    tenants = list(tenant_degrees)
    if popularity is None:
        popularity = pareto_popularity(tenants, alpha=alpha, seed=seed)
    else:
        missing = set(tenants) - set(popularity)
        if missing:
            raise ValueError(f"popularity missing tenants: {sorted(missing)}")
        total = float(sum(popularity[t] for t in tenants))
        if total <= 0:
            raise ValueError("popularity weights must sum to > 0")
        popularity = {t: float(popularity[t]) / total for t in tenants}

    rng = np.random.default_rng(seed)
    period = float(period_seconds or duration_seconds)
    # Amplitude from the peak:trough ratio r: (1+a)/(1-a) = r.
    amp = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    # Inverse-CDF sampling of the sinusoidal density on a fine grid:
    # cumulative rate R(t) = t + (a*period/2pi) * (1 - cos(2pi t/period)).
    grid = np.linspace(0.0, duration_seconds, 4096)
    cum = grid + amp * period / (2 * np.pi) * (
        1.0 - np.cos(2 * np.pi * grid / period)
    )
    cdf = cum / cum[-1]
    arrivals = np.sort(
        np.interp(rng.random(num_queries), cdf, grid)
    )
    shares = np.array([popularity[t] for t in tenants])
    tenant_picks = rng.choice(len(tenants), size=num_queries, p=shares)
    counts = np.bincount(tenant_picks, minlength=len(tenants))
    root_streams = {}
    for idx, tenant in enumerate(tenants):
        if counts[idx]:
            root_streams[tenant] = iter(
                make_workload_roots(
                    tenant_degrees[tenant],
                    int(counts[idx]),
                    seed=_tenant_seed(seed, idx),
                    hot_fraction=hot_fraction,
                    hot_set_size=hot_set_size,
                )
            )
    queries = [
        ClusterQuery(
            arrival_seconds=float(t),
            tenant=tenants[pick],
            root=int(next(root_streams[tenants[pick]])),
        )
        for t, pick in zip(arrivals, tenant_picks)
    ]
    return ClusterWorkload(
        queries=queries,
        popularity=popularity,
        duration_seconds=float(duration_seconds),
    )


@dataclass
class QueryOutcome:
    """One query's journey through a service."""

    root: int
    #: Owning tenant id ("" when driving a single-graph service).
    tenant: str = ""
    cached: bool = False
    #: ``True``/``False`` when validated against an expected parent
    #: tree, ``None`` when no expectation was supplied.
    correct: bool | None = None
    total_seconds: float = 0.0
    batch_lanes: int = 0
    shed_retries: int = 0
    #: The query ended in a *typed* shed (``Overloaded`` surfaced to the
    #: client as the terminal outcome — accounted, never silently lost).
    shed: bool = False
    error: str | None = None

    @property
    def served(self) -> bool:
        return self.error is None


@dataclass
class WorkloadReport:
    """Aggregate outcomes of one workload run."""

    outcomes: list = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        return len(self.outcomes)

    @property
    def served(self) -> int:
        return sum(1 for o in self.outcomes if o.served)

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def failed(self) -> int:
        """Queries that ended in an error other than a typed shed."""
        return sum(
            1 for o in self.outcomes if o.error is not None and not o.shed
        )

    @property
    def typed_sheds(self) -> int:
        """Queries whose terminal outcome was a typed ``Overloaded``."""
        return sum(1 for o in self.outcomes if o.shed)

    @property
    def accounted(self) -> int:
        """Queries with *some* recorded outcome (served, failed, or
        typed shed) — ``num_queries - accounted`` would be silent drops,
        and the gates require it to be zero."""
        return self.served + self.failed + self.typed_sheds

    @property
    def shed_retries(self) -> int:
        return sum(o.shed_retries for o in self.outcomes)

    @property
    def wrong_parents(self) -> int:
        return sum(1 for o in self.outcomes if o.correct is False)

    @property
    def validated(self) -> int:
        return sum(1 for o in self.outcomes if o.correct is not None)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.served if self.served else 0.0

    def latency_percentile(self, q: float) -> float:
        """Percentile ``q`` of served total latencies, or ``nan`` when
        nothing was served (an idle tenant's sub-report must not crash
        the builder assembling per-tenant rows)."""
        samples = [o.total_seconds for o in self.outcomes if o.served]
        if not samples:
            return float("nan")
        return float(np.percentile(np.asarray(samples), q))

    def per_tenant(self) -> "dict[str, WorkloadReport]":
        """Split into per-tenant sub-reports (insertion-ordered by first
        appearance; single-graph runs collapse to the ``""`` tenant)."""
        split: dict[str, WorkloadReport] = {}
        for o in self.outcomes:
            split.setdefault(o.tenant, WorkloadReport()).outcomes.append(o)
        return split


async def run_workload(
    service: TraversalService,
    roots,
    *,
    clients: int = 4,
    expected: dict | None = None,
    shed_backoff: float = 0.0005,
    max_shed_retries: int = 10_000,
) -> WorkloadReport:
    """Drive ``service`` with a closed loop of ``clients`` clients.

    Each client keeps one query in flight; an :class:`Overloaded`
    rejection backs off ``shed_backoff`` seconds and retries the same
    root.  ``expected`` maps root → parent array; served responses for
    those roots are checked bit-for-bit.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    pending = deque(int(r) for r in roots)
    outcomes: list[QueryOutcome] = []

    async def client() -> None:
        while pending:
            root = pending.popleft()
            retries = 0
            while True:
                try:
                    response = await service.submit(root)
                except Overloaded:
                    retries += 1
                    if retries > max_shed_retries:
                        outcomes.append(
                            QueryOutcome(
                                root=root,
                                shed_retries=retries,
                                error="shed retry budget exhausted",
                            )
                        )
                        break
                    await asyncio.sleep(shed_backoff)
                    continue
                except TraversalError as exc:
                    outcomes.append(
                        QueryOutcome(
                            root=root, shed_retries=retries, error=str(exc)
                        )
                    )
                    break
                correct = None
                if expected is not None and root in expected:
                    correct = bool(
                        np.array_equal(response.parent, expected[root])
                    )
                outcomes.append(
                    QueryOutcome(
                        root=root,
                        cached=response.cached,
                        correct=correct,
                        total_seconds=response.total_seconds,
                        batch_lanes=response.batch_lanes,
                        shed_retries=retries,
                    )
                )
                break

    await asyncio.gather(*(client() for _ in range(clients)))
    return WorkloadReport(outcomes=outcomes)


@dataclass
class TelemetrySummary:
    """What the live plane saw over one serving session."""

    port: int = 0
    #: Successful self-scrapes per endpoint path.
    scrapes: dict = field(default_factory=dict)
    #: Snapshots the sampler took.
    samples: int = 0
    #: Final :meth:`~repro.obs.slo.SLOMonitor.evaluate` document.
    slo: dict | None = None
    #: Last ``/metrics`` response body (bytes), for export parity checks.
    last_metrics_body: bytes = b""


async def http_get(
    host: str, port: int, path: str, *, timeout: float = 5.0
) -> tuple[int, dict, bytes]:
    """Tiny dependency-free HTTP GET: ``(status, headers, body)``.

    Enough client for the telemetry endpoint and the CI smoke scraper;
    not a general HTTP client (no redirects, no chunked encoding).
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout
    )
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body


async def _scrape_loop(
    summary: TelemetrySummary, host: str, port: int, interval: float
) -> None:
    """Poll ``/metrics`` and ``/healthz`` until cancelled, counting
    successful scrapes — the CI smoke's evidence the plane is live."""
    while True:
        for path in ("/metrics", "/healthz"):
            try:
                status, _, body = await http_get(host, port, path)
            except (OSError, TimeoutError, ValueError):
                continue
            if status == 200:
                summary.scrapes[path] = summary.scrapes.get(path, 0) + 1
                if path == "/metrics":
                    summary.last_metrics_body = body
        await asyncio.sleep(interval)


def run_serving_session(
    engine,
    roots,
    *,
    clients: int = 4,
    expected: dict | None = None,
    telemetry: dict | None = None,
    **service_kwargs,
):
    """Synchronous convenience: build a service around ``engine``, run
    the workload to completion, stop the service, and return both the
    workload report and the (stopped) service for stats inspection.

    ``telemetry`` (optional) starts the live plane for the session and
    makes the return a 3-tuple ``(report, service, TelemetrySummary)``.
    Keys: ``port`` (0 = ephemeral), ``interval`` (sampler cadence,
    seconds), ``slos`` (iterable of :class:`~repro.obs.slo.SLOSpec`),
    ``scrape`` (self-scrape ``/metrics`` + ``/healthz`` during the run,
    default ``True``).  Requires ``metrics=`` a real registry in
    ``service_kwargs``.
    """

    async def main():
        service = TraversalService(engine, **service_kwargs)
        if telemetry is None:
            async with service:
                report = await run_workload(
                    service, roots, clients=clients, expected=expected
                )
            return report, service

        from repro.obs.slo import SLOMonitor
        from repro.obs.timeline import TelemetrySampler
        from repro.serve.telemetry import TelemetryServer

        registry = service_kwargs.get("metrics")
        if registry is None or not getattr(registry, "enabled", False):
            raise ValueError(
                "telemetry requires metrics= a real MetricsRegistry"
            )
        interval = float(telemetry.get("interval", 0.05))
        sampler = TelemetrySampler(registry, interval=interval)
        slos = tuple(telemetry.get("slos", ()))
        monitor = SLOMonitor(registry, slos) if slos else None
        server = TelemetryServer(
            service,
            registry,
            port=int(telemetry.get("port", 0)),
            sampler=sampler,
            slo_monitor=monitor,
        )
        summary = TelemetrySummary()
        async with service:
            async with server:
                summary.port = server.port
                if monitor is not None:
                    monitor.observe()  # zero baseline for the window delta
                await sampler.start()
                scraper = None
                if telemetry.get("scrape", True):
                    scraper = asyncio.create_task(
                        _scrape_loop(
                            summary, "127.0.0.1", server.port, interval
                        )
                    )
                try:
                    report = await run_workload(
                        service, roots, clients=clients, expected=expected
                    )
                    # One settled pass so the final state is observable.
                    await asyncio.sleep(interval)
                finally:
                    if scraper is not None:
                        scraper.cancel()
                        try:
                            await scraper
                        except asyncio.CancelledError:
                            pass
                    await sampler.stop()
                sampler.sample()
                if monitor is not None:
                    summary.slo = monitor.evaluate()
        summary.samples = sampler.taken
        return report, service, summary

    return asyncio.run(main())
