#!/usr/bin/env python3
"""Weak-scaling study (paper Fig. 9) from the public API.

Scales the simulated machine from 16 to 256 nodes with constant per-rank
work and plots simulated GTEPS against ideal scaling as an ASCII chart.

Run:  python examples/weak_scaling_study.py
"""

from repro.analysis.experiments import run_scaling_sweep
from repro.analysis.reporting import ascii_bar_chart, ascii_table

LADDER = ((12, 4, 4), (14, 8, 8), (16, 16, 16))


def main() -> None:
    print("Running weak-scaling sweep (this takes ~half a minute) ...")
    points = run_scaling_sweep(points=LADDER)

    base = points[0]
    rows = []
    for p in points:
        ideal = base.gteps * p.nodes / base.nodes
        rows.append([
            p.nodes, p.scale, f"{p.gteps:.1f}", f"{ideal:.1f}",
            f"{100 * p.gteps / ideal:.0f}%",
        ])
    print(ascii_table(
        ["nodes", "scale", "sim GTEPS", "ideal", "efficiency"],
        rows,
        title="Weak scalability of the 1.5D engine:",
    ))
    print()
    print(ascii_bar_chart(
        [f"{p.nodes:4d} nodes" for p in points],
        [p.gteps for p in points],
        log=True,
        unit=" GTEPS",
        title="simulated GTEPS (log scale):",
    ))

    print("\nTime share by subgraph at each point (paper Fig. 10):")
    for p in points:
        shares = p.result.time_by_phase()
        total = sum(shares.values()) or 1.0
        top = sorted(shares.items(), key=lambda kv: -kv[1])[:3]
        line = ", ".join(f"{k} {100 * v / total:.0f}%" for k, v in top)
        print(f"  {p.nodes:4d} nodes: {line}")


if __name__ == "__main__":
    main()
