#!/usr/bin/env python3
"""Quickstart: run Graph500 BFS with 3-level degree-aware 1.5D partitioning.

Generates a SCALE-14 Graph500 graph, partitions it for a simulated
64-node New Sunway mesh, runs one BFS, validates the result against the
Graph500 specification, and prints the simulated performance summary.
With a trace path, the run is recorded by ``repro.obs`` and exported as
Chrome trace_event JSON (open in chrome://tracing or ui.perfetto.dev) —
see docs/observability.md.

Run:  python examples/quickstart.py [scale] [trace.json]
"""

import sys

import numpy as np

from repro import Graph500Problem, generate_edges, validate_bfs_result
from repro.analysis.reporting import ascii_table, format_seconds
from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh


def main(scale: int = 14, trace_path: str | None = None) -> None:
    problem = Graph500Problem(scale=scale)
    print(f"Generating Graph500 SCALE {scale}: {problem.num_vertices:,} vertices, "
          f"{problem.num_edges:,} edges ...")
    src, dst = generate_edges(scale, seed=1)

    # An 8x8 mesh of simulated SW26010-Pro nodes; each mesh row is one
    # supernode, as on the real machine.
    rows = cols = 8
    machine = MachineSpec(
        num_nodes=rows * cols, nodes_per_supernode=cols
    ).scaled_for(src.size / (rows * cols))
    mesh = ProcessMesh(rows, cols, machine=machine)

    print("Partitioning (E >= 512, H >= 32) ...")
    part = partition_graph(
        src, dst, problem.num_vertices, mesh, e_threshold=512, h_threshold=32
    )
    sizes = part.class_sizes()
    print(f"  classes: E={sizes['E']}, H={sizes['H']}, L={sizes['L']}; "
          f"core subgraph holds {100 * part.core_fraction():.0f}% of edges")

    tracer = None
    if trace_path is not None:
        from repro.obs import Tracer

        tracer = Tracer()
    engine = DistributedBFS(
        part, machine=machine,
        config=BFSConfig(e_threshold=512, h_threshold=32),
        tracer=tracer,
    )
    graph = build_csr(*symmetrize_edges(src, dst), problem.num_vertices)
    root = int(np.argmax(graph.degrees))
    print(f"Running BFS from hub root {root} ...")
    result = engine.run(root)

    validate_bfs_result(graph, root, result.parent, edge_src=src, edge_dst=dst)
    print("Graph500 validation: PASSED")

    print(ascii_table(
        ["iteration", "frontier", "EH2EH", "L2L"],
        [
            [r.index, r.frontier_size, r.directions["EH2EH"], r.directions["L2L"]]
            for r in result.iterations
        ],
        title="\nPer-iteration direction choices (sub-iteration optimization):",
    ))
    print(f"\nvisited {result.num_visited:,} of {problem.num_vertices:,} vertices "
          f"in {result.num_iterations} iterations")
    print(f"simulated time:  {format_seconds(result.total_seconds)}")
    print(f"simulated GTEPS: {result.simulated_gteps(problem):.1f} "
          f"(paper-scale estimate at {rows * cols} nodes)")

    if tracer is not None:
        from repro.obs import render_flame, write_chrome_trace

        print("\nWhere the simulated time went:")
        print(render_flame(tracer, min_share=0.01))
        events = write_chrome_trace(tracer, trace_path)
        print(f"\nwrote {events} spans to {trace_path} — open it at "
              "https://ui.perfetto.dev or chrome://tracing")


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 14,
        sys.argv[2] if len(sys.argv) > 2 else None,
    )
