#!/usr/bin/env python3
"""Strong-scaling study: fixed graph, growing machine.

The paper scales weakly (problem grows with the machine); a downstream
user sizing a cluster for a *fixed* graph needs the strong-scaling curve
instead.  This example holds SCALE fixed and grows the mesh, showing
where added nodes stop paying — the frontier-per-rank shrinks until
fixed per-iteration costs dominate.

Run:  python examples/strong_scaling_study.py [scale]
"""

import sys

from repro.analysis.reporting import ascii_table
from repro.analysis.sweeps import run_strong_scaling

MESHES = ((2, 2), (4, 4), (8, 8), (16, 16))


def main(scale: int = 14) -> None:
    print(f"Strong scaling at fixed SCALE {scale} "
          f"({16 * (1 << scale):,} edges) ...")
    rows = run_strong_scaling(scale=scale, meshes=MESHES)
    print(ascii_table(
        ["nodes", "sim GTEPS", "speedup", "efficiency"],
        [
            [
                r["nodes"], f"{r['gteps']:.1f}",
                f"{r['speedup_vs_smallest']:.2f}x",
                f"{100 * r['efficiency']:.0f}%",
            ]
            for r in rows
        ],
        title="strong scaling of the 1.5D engine:",
    ))
    knee = next(
        (r["nodes"] for a, r in zip(rows, rows[1:]) if r["efficiency"] < 0.5),
        None,
    )
    if knee:
        print(f"\nefficiency drops below 50% at {knee} nodes — beyond that, "
              f"per-iteration fixed costs outweigh the shrinking per-rank work")
    else:
        print("\nefficiency stays above 50% across the sweep")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 14)
