#!/usr/bin/env python3
"""A conforming-style Graph500 run: kernels 1 + 2 with official output.

Runs generation, timed construction through the §5 in-place preprocessing
pipeline, BFS from sampled roots with full validation, and prints the
official result block (the same fields a Graph500 submission reports).

Run:  python examples/graph500_official_run.py [scale] [num_roots]
"""

import sys

from repro.core.preprocessing import preprocess
from repro.graph500.driver import run_graph500
from repro.graph500.rmat import generate_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh


def main(scale: int = 13, num_roots: int = 16) -> None:
    rows = cols = 4
    p = rows * cols
    print(f"Graph500 run: SCALE {scale}, {p} simulated nodes, "
          f"{num_roots} roots\n")

    src, dst = generate_edges(scale, seed=1)
    machine = MachineSpec(num_nodes=p, nodes_per_supernode=cols).scaled_for(
        src.size / p
    )
    mesh = ProcessMesh(rows, cols, machine=machine)

    print("kernel 1: construction via in-place global sort (PSRS + radix) ...")
    part, prep = preprocess(
        src, dst, 1 << scale, mesh,
        e_threshold=1024, h_threshold=128, machine=machine,
    )
    print(f"  sorted {prep.num_arcs:,} arcs, exchanged "
          f"{prep.exchange_bytes / 1e6:.1f} MB, simulated "
          f"{prep.construction_seconds * 1e3:.3f} ms\n")

    print(f"kernel 2: BFS from {num_roots} sampled roots (validated) ...")
    report = run_graph500(
        scale, rows, cols, seed=1, num_roots=num_roots,
        e_threshold=1024, h_threshold=128,
        machine=machine,
        construction_seconds=prep.construction_seconds,
    )
    print()
    print(report.render())
    print(f"\nharmonic-mean performance: {report.mean_gteps:.2f} simulated GTEPS")


if __name__ == "__main__":
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    roots = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    main(scale, roots)
