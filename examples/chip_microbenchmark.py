#!/usr/bin/env python3
"""Chip-level kernels: OCS-RMA sorting and segmented pull (paper §4.3-4.4).

Runs the Fig. 14 bucketing microbenchmark through the SW26010-Pro model
(MPE vs 1 CG vs 6 CGs) and shows the CG-aware segmenting plan with its
modeled 9x bottom-up kernel speedup.

Run:  python examples/chip_microbenchmark.py
"""

import numpy as np

from repro.analysis.reporting import ascii_bar_chart
from repro.core import partition_graph, plan_segmenting
from repro.graph500.rmat import generate_edges
from repro.machine.chip import SW26010_PRO
from repro.machine.costmodel import NodeKernelRates
from repro.machine.ldm import LDMLayout
from repro.runtime.mesh import ProcessMesh
from repro.sort.bucket import mpe_bucket_sort
from repro.sort.ocs import OCSConfig, simulate_ocs_rma


def ocs_microbenchmark() -> None:
    print("=== OCS-RMA bucketing (paper Fig. 14) ===")
    rng = np.random.default_rng(1)
    values = rng.integers(0, 2**63 - 1, size=1 << 21)
    buckets = values & 0xFF

    mpe = mpe_bucket_sort(values, buckets, 256)
    one = simulate_ocs_rma(values, buckets, 256, config=OCSConfig(num_cgs=1))
    six = simulate_ocs_rma(values, buckets, 256, config=OCSConfig(num_cgs=6))

    print(ascii_bar_chart(
        ["MPE", "1 CG", "6 CGs"],
        [
            mpe.throughput_bytes_per_s / 1e9,
            one.throughput_bytes_per_s / 1e9,
            six.throughput_bytes_per_s / 1e9,
        ],
        log=True,
        unit=" GB/s",
        title="bucketing 64-bit integers by low 8 bits "
        "(paper: 0.0406 / 12.5 / 58.6):",
    ))
    print(f"6-CG bandwidth utilization: {100 * six.bandwidth_utilization():.1f}% "
          f"(paper: 47.0%)")
    print(f"RMA batches: {six.num_batches:,}; cross-CG atomics: "
          f"{six.num_atomics:,}")


def segmenting_plan_demo() -> None:
    print("\n=== CG-aware core subgraph segmenting (paper §4.3) ===")
    scale = 14
    src, dst = generate_edges(scale, seed=1)
    mesh = ProcessMesh(8, 8)
    part = partition_graph(
        src, dst, 1 << scale, mesh, e_threshold=512, h_threshold=32
    )
    plan = plan_segmenting(part)
    print(f"column E+H population (max): {plan.max_column_eh:,} vertices")
    print(f"segments: {plan.num_segments} (one per CG), "
          f"{plan.segment_bytes:,} bytes of frontier bits each")
    layout = LDMLayout()
    print(f"per-CG LDM capacity for shared bits: {layout.capacity_bytes:,} bytes "
          f"-> plan feasible: {plan.feasible}")
    print("source-interval schedule (step x CG -> interval):")
    for s, row in enumerate(plan.schedule):
        print(f"  step {s}: {row}")

    rates = NodeKernelRates(chip=SW26010_PRO)
    print(f"\nmodeled bottom-up rates: "
          f"{rates.pull_rate_unsegmented() / 1e9:.2f} G arcs/s naive vs "
          f"{rates.pull_rate_segmented() / 1e9:.2f} G arcs/s segmented "
          f"({rates.segmenting_speedup():.1f}x, paper: 9x)")


if __name__ == "__main__":
    ocs_microbenchmark()
    segmenting_plan_demo()
