#!/usr/bin/env python3
"""Degree-threshold tuning (paper §6.2.1 and Fig. 12).

The E/H thresholds can only meaningfully sit in the valleys between the
degree distribution's peaks.  This example detects the peaks of a SCALE-14
Graph500 graph, derives candidate thresholds, grid-searches them on an
8x8 simulated mesh, and reports the grid with the best cell — the same
procedure the paper describes for its SCALE 35 tuning.

Run:  python examples/threshold_tuning.py
"""

import numpy as np

from repro.analysis.experiments import build_setup, run_15d
from repro.analysis.reporting import ascii_table
from repro.graphs.stats import degree_peaks

SCALE, ROWS, COLS = 14, 8, 8


def candidate_thresholds(peaks: np.ndarray, count: int = 4) -> list[int]:
    """Valley positions between consecutive peaks (geometric midpoints)."""
    peaks = peaks[peaks > 1]
    mids = [int(np.sqrt(a * b)) for a, b in zip(peaks[:-1], peaks[1:])]
    mids = sorted(set(m for m in mids if m >= 4), reverse=True)
    return mids[:count] if len(mids) >= 2 else [512, 128, 32, 8][:count]


def main() -> None:
    setup = build_setup(SCALE, ROWS, COLS, seed=1)
    from repro.graphs.stats import degrees_from_edges

    degrees = degrees_from_edges(setup.src, setup.dst, setup.num_vertices)
    peaks = degree_peaks(degrees)
    print(f"degree peaks of SCALE {SCALE}: {peaks.tolist()}")

    cands = candidate_thresholds(peaks, count=4)
    print(f"candidate thresholds (valleys between peaks): {cands}")

    grid = {}
    for e_thr in cands:
        for h_thr in cands:
            if e_thr < h_thr:
                grid[(e_thr, h_thr)] = 0.0
                continue
            _, res = run_15d(setup, e_threshold=e_thr, h_threshold=h_thr)
            grid[(e_thr, h_thr)] = setup.num_edges / res.total_seconds / 1e9

    print()
    print(ascii_table(
        ["E \\ H"] + [str(h) for h in cands],
        [[e] + [f"{grid[(e, h)]:.1f}" for h in cands] for e in cands],
        title=f"sim GTEPS over the threshold grid ({ROWS * COLS} nodes):",
    ))
    best = max(grid, key=grid.get)
    print(f"\nbest cell: E >= {best[0]}, H >= {best[1]} "
          f"({grid[best]:.1f} simulated GTEPS)")
    print("cells with E < H are invalid (0.0), as in the paper's Fig. 12")


if __name__ == "__main__":
    main()
