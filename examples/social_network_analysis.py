#!/usr/bin/env python3
"""Partitioning a 'real-world' social network (paper §8's applicability claim).

The paper argues 3-level degree-aware 1.5D partitioning "is designed for
any graph with extremely skewed degree distribution, which is commonly
found in social networks, web graphs, etc."  This example builds a
synthetic social network with a heavier-tailed degree distribution than
Graph500's (R-MAT with a more aggressive diagonal), classifies its
celebrity/influencer/regular users into E/H/L, and compares the 1.5D
engine against the 1D and 2D baselines on the same simulated machine.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.baselines import DelegatedOneDimBFS, OneDimBFS, TwoDimBFS
from repro.core import BFSConfig, DistributedBFS, partition_graph
from repro.graph500.rmat import rmat_edges, scramble_vertices
from repro.graph500.validate import validate_bfs_result
from repro.graphs.csr import build_csr, symmetrize_edges
from repro.graphs.stats import degree_peaks, degrees_from_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh

SCALE = 15
EDGE_FACTOR = 24  # denser than Graph500: social graphs average more ties


def build_social_graph():
    """A follower-style graph: heavier diagonal = stronger celebrities."""
    n = 1 << SCALE
    rng = np.random.default_rng(7)
    src, dst = rmat_edges(SCALE, EDGE_FACTOR * n, a=0.62, b=0.17, c=0.17, rng=rng)
    return scramble_vertices(src, dst, n, rng=rng)


def main() -> None:
    n = 1 << SCALE
    src, dst = build_social_graph()
    degrees = degrees_from_edges(src, dst, n)
    print(f"social graph: {n:,} users, {src.size:,} ties, "
          f"max degree {degrees.max():,} (celebrity), median "
          f"{int(np.median(degrees[degrees > 0]))}")

    rows = cols = 8
    machine = MachineSpec(
        num_nodes=rows * cols, nodes_per_supernode=cols
    ).scaled_for(src.size / (rows * cols))
    mesh = ProcessMesh(rows, cols, machine=machine)

    # Pick thresholds from the degree-distribution valleys, as §6.2.1
    # prescribes: E above the top mode, H above the mid modes.
    peaks = degree_peaks(degrees)
    e_thr = int(peaks[-1] // 2) if peaks.size else 1024
    h_thr = max(int(peaks[len(peaks) // 2]), 8) if peaks.size else 32
    if e_thr <= h_thr:
        e_thr = 4 * h_thr
    print(f"degree peaks: {peaks.tolist()}; chose E >= {e_thr}, H >= {h_thr}")

    part = partition_graph(src, dst, n, mesh, e_threshold=e_thr, h_threshold=h_thr)
    sizes = part.class_sizes()
    print(f"celebrities (E): {sizes['E']}, influencers (H): {sizes['H']}, "
          f"regular (L): {sizes['L']}")

    graph = build_csr(*symmetrize_edges(src, dst), n)
    root = int(np.argmax(graph.degrees))

    results = []
    for label, make in [
        ("1D", lambda: OneDimBFS(src, dst, n, mesh, machine=machine)),
        ("1D+delegates", lambda: DelegatedOneDimBFS(src, dst, n, mesh, machine=machine)),
        ("2D", lambda: TwoDimBFS(src, dst, n, mesh, machine=machine)),
    ]:
        res = make().run(root)
        validate_bfs_result(graph, root, res.parent)
        results.append((label, res))
    engine = DistributedBFS(
        part, machine=machine, config=BFSConfig(e_threshold=e_thr, h_threshold=h_thr)
    )
    res = engine.run(root)
    validate_bfs_result(graph, root, res.parent)
    results.append(("1.5D (ours)", res))

    print()
    print(ascii_table(
        ["method", "sim GTEPS", "iterations", "comm MB"],
        [
            [
                label,
                f"{src.size / r.total_seconds / 1e9:.1f}",
                r.num_iterations,
                f"{r.ledger.total_bytes / 1e6:.2f}",
            ]
            for label, r in results
        ],
        title="BFS on the social graph (64 simulated nodes):",
    ))
    print("\nAll four methods validated against the Graph500 checker.")


if __name__ == "__main__":
    main()
