#!/usr/bin/env python3
"""SSSP and PageRank on the 1.5D partitioning (paper §8).

The discussion section claims the partitioning is "neutral to the graph
algorithm".  This example runs the Graph500 SSSP kernel and PageRank on
the same partitioned structure the BFS uses, and shows that their
communication profiles inherit the 1.5D placement (H2L/L2H messaging is
intra-row; L2L is two-stage forwarded; delegates reduce at the end).

Run:  python examples/algorithms_beyond_bfs.py
"""

import numpy as np

from repro.analysis.reporting import ascii_table, format_seconds
from repro.core import partition_graph
from repro.core.algorithms import generate_weights, pagerank, sssp
from repro.graph500.rmat import generate_edges
from repro.machine.network import MachineSpec
from repro.runtime.mesh import ProcessMesh

SCALE = 13


def main() -> None:
    n = 1 << SCALE
    src, dst = generate_edges(SCALE, seed=1)
    rows = cols = 4
    machine = MachineSpec(
        num_nodes=rows * cols, nodes_per_supernode=cols
    ).scaled_for(src.size / (rows * cols))
    mesh = ProcessMesh(rows, cols, machine=machine)
    part = partition_graph(src, dst, n, mesh, e_threshold=1024, h_threshold=128)
    print(f"partitioned SCALE {SCALE}: {part.class_sizes()}")

    # --- SSSP (Graph500 kernel 2b) -----------------------------------
    weights = generate_weights(src.size, seed=2)
    root = int(np.argmax(part.degrees))
    res = sssp(part, root, weights, edge_src=src, edge_dst=dst, machine=machine)
    reached = np.isfinite(res.distance)
    print(f"\nSSSP from hub {root}: reached {int(reached.sum()):,} vertices "
          f"in {res.num_iterations} rounds, {res.relaxations:,} relaxations, "
          f"simulated {format_seconds(res.total_seconds)}")
    far = int(np.argmax(np.where(reached, res.distance, -1)))
    print(f"  farthest vertex: {far} at weighted distance "
          f"{res.distance[far]:.3f}")

    # --- PageRank ------------------------------------------------------
    pr = pagerank(part, machine=machine, tol=1e-10)
    order = np.argsort(pr.ranks)[::-1][:5]
    print(f"\nPageRank: converged={pr.converged} in {pr.num_iterations} "
          f"iterations, simulated {format_seconds(pr.total_seconds)}")
    print(ascii_table(
        ["vertex", "rank", "degree", "class"],
        [
            [
                int(v), f"{pr.ranks[v]:.2e}", int(part.degrees[v]),
                {0: "L", 1: "H", 2: "E"}[int(part.vclass[v])],
            ]
            for v in order
        ],
        title="top-5 vertices by PageRank (hubs, as expected):",
    ))

    # communication profile inherited from the partitioning
    by_phase = {}
    for e in pr.ledger.comm_events:
        by_phase[e.phase] = by_phase.get(e.phase, 0.0) + e.total_bytes
    print("\nPageRank communication bytes by component: "
          + ", ".join(f"{k}={v / 1e6:.2f}MB" for k, v in sorted(by_phase.items())))


if __name__ == "__main__":
    main()
